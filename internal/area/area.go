// Package area implements BeSS storage areas (paper §2).
//
// At the physical level a database consists of storage areas, which are UNIX
// files (or, here, in-memory buffers for tests). An area is partitioned into
// extents of page.PerExtent pages; disk segments are allocated from an extent
// with the binary buddy system, and file-backed areas expand one extent at a
// time when full.
//
// On-disk layout:
//
//	page 0                      area header
//	pages 1+e*PerExtent ...     extent e; its first page is the extent map
//
// The extent map records the live (offset, order) buddy allocations so the
// allocator state survives restarts; it is written through on every
// allocation change.
package area

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"bess/internal/buddy"
	"bess/internal/page"
)

// MaxSegmentPages is the largest segment one AllocSegment call can grant:
// half an extent (the first buddy block of each extent is reserved for the
// extent map, so a full-extent block never exists).
const MaxSegmentPages = page.PerExtent / 2

// Errors returned by the area layer.
var (
	ErrBadMagic    = errors.New("area: bad magic (not a BeSS storage area)")
	ErrBadGeometry = errors.New("area: page geometry mismatch")
	ErrOutOfRange  = errors.New("area: page out of range")
	ErrTooLarge    = errors.New("area: segment larger than MaxSegmentPages")
	ErrNoSpace     = errors.New("area: no space and area is not growable")
	ErrNotSegment  = errors.New("area: page is not the start of a live segment")
	ErrClosed      = errors.New("area: closed")
)

const (
	headerMagic = 0xBE550A12
	extentMagic = 0xBE55E271
	version     = 1
)

// Store abstracts the backing bytes of an area. Production areas run on
// the file/mem implementations below; the fault-injection layer
// (internal/fault) substitutes a medium that can lose power mid-write.
type Store interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// fileStore backs an area with an *os.File.
type fileStore struct{ f *os.File }

func (s fileStore) ReadAt(p []byte, off int64) (int, error)  { return s.f.ReadAt(p, off) }
func (s fileStore) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }
func (s fileStore) Size() (int64, error) {
	fi, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
func (s fileStore) Truncate(size int64) error { return s.f.Truncate(size) }
func (s fileStore) Sync() error               { return s.f.Sync() }
func (s fileStore) Close() error              { return s.f.Close() }

// memStore backs an area with a growable byte slice.
type memStore struct {
	mu  sync.RWMutex
	buf []byte
}

func (s *memStore) ReadAt(p []byte, off int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if off >= int64(len(s.buf)) {
		return 0, fmt.Errorf("memstore: read at %d beyond size %d", off, len(s.buf))
	}
	n := copy(p, s.buf[off:])
	if n < len(p) {
		return n, fmt.Errorf("memstore: short read")
	}
	return n, nil
}

func (s *memStore) WriteAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(s.buf)) {
		grown := make([]byte, end)
		copy(grown, s.buf)
		s.buf = grown
	}
	copy(s.buf[off:end], p)
	return len(p), nil
}

func (s *memStore) Size() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.buf)), nil
}

func (s *memStore) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size <= int64(len(s.buf)) {
		s.buf = s.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, s.buf)
	s.buf = grown
	return nil
}

func (s *memStore) Sync() error  { return nil }
func (s *memStore) Close() error { return nil }

// Area is one storage area: a paged file with buddy-allocated segments.
// All methods are safe for concurrent use.
type Area struct {
	mu       sync.Mutex
	st       Store
	id       page.AreaID
	extents  []*buddy.Allocator // one per extent
	growable bool
	closed   bool

	// Stats.
	reads, writes, grows int64
}

// CreateFile creates a new file-backed area at path with initialExtents
// extents (at least 1). The file must not already exist.
func CreateFile(path string, id page.AreaID, initialExtents int) (*Area, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("area: create %s: %w", path, err)
	}
	a, err := initArea(fileStore{f}, id, initialExtents, true)
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		os.Remove(path)
		return nil, err
	}
	return a, nil
}

// OpenFile opens an existing file-backed area, rebuilding allocator state
// from the persisted extent maps.
func OpenFile(path string) (*Area, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("area: open %s: %w", path, err)
	}
	a, err := loadArea(fileStore{f}, true)
	if err != nil {
		// Keep err intact when the cleanup Close succeeds so callers can
		// still compare against sentinels like ErrBadMagic.
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return a, nil
}

// NewMem creates an in-memory area with the given number of extents.
// Growable memory areas expand like file areas; non-growable ones model raw
// disk partitions, whose size is fixed (paper §2).
func NewMem(id page.AreaID, extents int, growable bool) (*Area, error) {
	return initArea(&memStore{}, id, extents, growable)
}

// Create initializes a brand-new area on st — the custom-media entry point
// (fault injection, exotic backends). CreateFile/NewMem are conveniences
// over the same path.
func Create(st Store, id page.AreaID, initialExtents int, growable bool) (*Area, error) {
	return initArea(st, id, initialExtents, growable)
}

// Load opens an existing area image on st, rebuilding allocator state from
// the persisted extent maps.
func Load(st Store, growable bool) (*Area, error) {
	return loadArea(st, growable)
}

func initArea(st Store, id page.AreaID, initialExtents int, growable bool) (*Area, error) {
	if initialExtents < 1 {
		initialExtents = 1
	}
	a := &Area{st: st, id: id, growable: growable}
	if err := a.writeHeader(initialExtents); err != nil {
		return nil, err
	}
	for e := 0; e < initialExtents; e++ {
		if err := a.addExtentLocked(); err != nil {
			return nil, err
		}
	}
	// addExtentLocked rewrote the header per extent; make count authoritative.
	if err := a.writeHeader(len(a.extents)); err != nil {
		return nil, err
	}
	return a, nil
}

func loadArea(st Store, growable bool) (*Area, error) {
	a := &Area{st: st, growable: growable}
	hdr := make([]byte, page.Size)
	if _, err := st.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("area: read header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != headerMagic {
		return nil, ErrBadMagic
	}
	if binary.BigEndian.Uint16(hdr[4:6]) != version {
		return nil, fmt.Errorf("area: unsupported version %d", binary.BigEndian.Uint16(hdr[4:6]))
	}
	a.id = page.AreaID(binary.BigEndian.Uint32(hdr[6:10]))
	if binary.BigEndian.Uint32(hdr[10:14]) != page.Size ||
		binary.BigEndian.Uint32(hdr[14:18]) != page.PerExtent {
		return nil, ErrBadGeometry
	}
	n := int(binary.BigEndian.Uint32(hdr[18:22]))
	for e := 0; e < n; e++ {
		alloc, err := a.loadExtent(e)
		if err != nil {
			return nil, err
		}
		a.extents = append(a.extents, alloc)
	}
	return a, nil
}

func (a *Area) writeHeader(extents int) error {
	hdr := make([]byte, page.Size)
	binary.BigEndian.PutUint32(hdr[0:4], headerMagic)
	binary.BigEndian.PutUint16(hdr[4:6], version)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(a.id))
	binary.BigEndian.PutUint32(hdr[10:14], page.Size)
	binary.BigEndian.PutUint32(hdr[14:18], page.PerExtent)
	binary.BigEndian.PutUint32(hdr[18:22], uint32(extents))
	_, err := a.st.WriteAt(hdr, 0)
	return err
}

// extentOrder is log2(page.PerExtent).
func extentOrder() int {
	k, _ := buddy.OrderFor(page.PerExtent)
	return k
}

// extentStart returns the absolute page number of extent e's first page.
func extentStart(e int) page.No { return page.No(1 + e*page.PerExtent) }

// addExtentLocked appends a fresh extent, reserving its map page.
func (a *Area) addExtentLocked() error {
	alloc, err := buddy.New(extentOrder())
	if err != nil {
		return err
	}
	// Reserve offset 0 for the extent map page.
	if _, _, err := alloc.AllocOrder(0); err != nil {
		return err
	}
	e := len(a.extents)
	a.extents = append(a.extents, alloc)
	// Extend the backing store to cover the new extent and persist its map.
	end := int64(extentStart(e+1)-page.PerExtent) * page.Size // start of extent e
	end += int64(page.PerExtent) * page.Size
	if err := a.st.Truncate(end); err != nil {
		a.extents = a.extents[:e]
		return err
	}
	if err := a.persistExtent(e); err != nil {
		a.extents = a.extents[:e]
		return err
	}
	a.grows++
	return a.writeHeader(len(a.extents))
}

// persistExtent writes extent e's allocation map to its map page.
// The map records (offset, order) for every live allocation except the
// reserved map page itself.
func (a *Area) persistExtent(e int) error {
	alloc := a.extents[e]
	buf := make([]byte, page.Size)
	binary.BigEndian.PutUint32(buf[0:4], extentMagic)
	count := 0
	pos := 8
	for off := int64(1); off < int64(page.PerExtent); off++ {
		if sz, ok := alloc.BlockSize(off); ok {
			k, _ := buddy.OrderFor(sz)
			buf[pos] = byte(off)
			buf[pos+1] = byte(k)
			pos += 2
			count++
		}
	}
	binary.BigEndian.PutUint16(buf[4:6], uint16(count))
	_, err := a.st.WriteAt(buf, int64(extentStart(e))*page.Size)
	return err
}

// loadExtent rebuilds extent e's allocator from its persisted map page.
func (a *Area) loadExtent(e int) (*buddy.Allocator, error) {
	buf := make([]byte, page.Size)
	if _, err := a.st.ReadAt(buf, int64(extentStart(e))*page.Size); err != nil {
		return nil, fmt.Errorf("area: read extent %d map: %w", e, err)
	}
	if binary.BigEndian.Uint32(buf[0:4]) != extentMagic {
		return nil, fmt.Errorf("area: extent %d: %w", e, ErrBadMagic)
	}
	alloc, err := buddy.New(extentOrder())
	if err != nil {
		return nil, err
	}
	if _, _, err := alloc.AllocOrder(0); err != nil {
		return nil, err
	}
	count := int(binary.BigEndian.Uint16(buf[4:6]))
	pos := 8
	for i := 0; i < count; i++ {
		off := int64(buf[pos])
		k := int(buf[pos+1])
		pos += 2
		if err := placeAt(alloc, off, k); err != nil {
			return nil, fmt.Errorf("area: extent %d: rebuild alloc at %d order %d: %w", e, off, k, err)
		}
	}
	return alloc, nil
}

// placeAt forces an allocation of order k at offset off by repeatedly
// allocating blocks of that order until the desired one is produced, then
// freeing the extras. The buddy allocator has at most PerExtent blocks, so
// this terminates quickly; it only runs during recovery of an extent map.
func placeAt(alloc *buddy.Allocator, off int64, k int) error {
	var extras []int64
	defer func() {
		for _, x := range extras {
			_ = alloc.Free(x)
		}
	}()
	for {
		got, _, err := alloc.AllocOrder(k)
		if err != nil {
			return err
		}
		if got == off {
			return nil
		}
		extras = append(extras, got)
	}
}

// ID returns the area's identifier.
func (a *Area) ID() page.AreaID { return a.id }

// Extents returns the current number of extents.
func (a *Area) Extents() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.extents)
}

// Pages returns the total number of pages (header + extents).
func (a *Area) Pages() page.No {
	a.mu.Lock()
	defer a.mu.Unlock()
	return extentStart(len(a.extents))
}

// Growable reports whether the area may expand by adding extents.
func (a *Area) Growable() bool { return a.growable }

// ReadPage reads page p into buf, which must be page.Size bytes.
func (a *Area) ReadPage(p page.No, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("area: ReadPage buffer is %d bytes, want %d", len(buf), page.Size)
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	limit := extentStart(len(a.extents))
	a.reads++
	a.mu.Unlock()
	if p < 0 || p >= limit {
		return ErrOutOfRange
	}
	_, err := a.st.ReadAt(buf, int64(p)*page.Size)
	return err
}

// WritePage writes data (page.Size bytes) to page p.
func (a *Area) WritePage(p page.No, data []byte) error {
	if len(data) != page.Size {
		return fmt.Errorf("area: WritePage buffer is %d bytes, want %d", len(data), page.Size)
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	limit := extentStart(len(a.extents))
	a.writes++
	a.mu.Unlock()
	if p < 0 || p >= limit {
		return ErrOutOfRange
	}
	_, err := a.st.WriteAt(data, int64(p)*page.Size)
	return err
}

// AllocSegment allocates a disk segment of at least nPages contiguous pages,
// growing the area by one extent at a time if needed and permitted.
// It returns the absolute start page and the granted page count.
func (a *Area) AllocSegment(nPages int) (page.No, int, error) {
	if nPages <= 0 {
		return 0, 0, buddy.ErrBadRequest
	}
	if nPages > MaxSegmentPages {
		return 0, 0, ErrTooLarge
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, 0, ErrClosed
	}
	for {
		for e, alloc := range a.extents {
			off, granted, err := alloc.Alloc(int64(nPages))
			if err == nil {
				if err := a.persistExtent(e); err != nil {
					_ = alloc.Free(off)
					return 0, 0, err
				}
				return extentStart(e) + page.No(off), int(granted), nil
			}
		}
		if !a.growable {
			return 0, 0, ErrNoSpace
		}
		if err := a.addExtentLocked(); err != nil {
			return 0, 0, err
		}
	}
}

// FreeSegment releases the segment starting at absolute page start.
func (a *Area) FreeSegment(start page.No) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	e, off, err := a.locate(start)
	if err != nil {
		return err
	}
	if err := a.extents[e].Free(off); err != nil {
		return ErrNotSegment
	}
	return a.persistExtent(e)
}

// SegmentPages returns the granted size of the live segment at start.
func (a *Area) SegmentPages(start page.No) (int, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, off, err := a.locate(start)
	if err != nil {
		return 0, false
	}
	sz, ok := a.extents[e].BlockSize(off)
	return int(sz), ok
}

func (a *Area) locate(p page.No) (extent int, offset int64, err error) {
	if p < 1 {
		return 0, 0, ErrOutOfRange
	}
	e := int((p - 1) / page.PerExtent)
	if e >= len(a.extents) {
		return 0, 0, ErrOutOfRange
	}
	return e, int64(p - extentStart(e)), nil
}

// Stats reports cumulative I/O counters: page reads, page writes, and
// extent growths.
func (a *Area) Stats() (reads, writes, grows int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reads, a.writes, a.grows
}

// FreePages returns the number of allocatable pages currently free.
func (a *Area) FreePages() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, alloc := range a.extents {
		n += alloc.FreeUnits()
	}
	return n
}

// Sync flushes the backing store.
func (a *Area) Sync() error { return a.st.Sync() }

// Close syncs and closes the area. Further operations fail with ErrClosed.
func (a *Area) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	// Report the sync failure even when the close also fails: losing the
	// sync error would hide that buffered pages may not have hit the disk.
	if err := a.st.Sync(); err != nil {
		if cerr := a.st.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	}
	return a.st.Close()
}
