package tx

import "bess/internal/page"

// Snapshot reads (DESIGN.md §7): a read-only transaction mode that never
// touches the lock manager. The monotonic commit LSN doubles as the version
// timestamp — every committed transaction's TCommit LSN stamps the images it
// produced, and a snapshot opened at stamp T observes exactly the
// transactions whose commit LSN is ≤ T. Snapshots acquire zero locks and
// therefore can neither block writers nor deadlock; the cost is version
// retention, bounded by the watermark GC that OldestSnapshot drives.

// SetCommitHook installs fn to run on every commit, after the commit record
// is durable and before the transaction's locks release, with the
// transaction id and its commit LSN (the version stamp). Must be called
// before any transaction begins; the hook is read unsynchronized.
func (m *Manager) SetCommitHook(fn func(txID uint64, commitLSN page.LSN)) { m.commitHook = fn }

// SetAbortHook installs fn to run on every runtime abort, after undo
// completes and before locks release. Same registration contract as
// SetCommitHook.
func (m *Manager) SetAbortHook(fn func(txID uint64)) { m.abortHook = fn }

// noteCommit publishes lsn as the latest commit stamp. Commit LSNs are
// allocated monotonically but hooks can race, so the clock only moves
// forward.
func (m *Manager) noteCommit(lsn page.LSN) {
	m.mu.Lock()
	if lsn > m.commitStamp {
		m.commitStamp = lsn
	}
	m.mu.Unlock()
}

// SeedCommitStamp raises the version clock to lsn (no-op if already past
// it). Restart recovery seeds the clock from the log tail so snapshots
// opened after a crash sit above every pre-crash commit.
func (m *Manager) SeedCommitStamp(lsn page.LSN) { m.noteCommit(lsn) }

// CommitStamp returns the current version clock: the highest published
// commit LSN.
func (m *Manager) CommitStamp() page.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitStamp
}

// Snap is one open snapshot: a stamp pinned against version GC.
type Snap struct {
	m     *Manager
	id    uint64
	stamp page.LSN
}

// BeginSnapshot opens a read-only snapshot at the current commit stamp. It
// allocates no transaction id, takes no locks, and writes nothing to the
// log; it only pins its stamp in the manager's snapshot table so the
// version watermark cannot pass it. Close releases the pin.
func (m *Manager) BeginSnapshot() *Snap {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snaps == nil {
		m.snaps = make(map[uint64]page.LSN)
	}
	m.nextSnap++
	s := &Snap{m: m, id: m.nextSnap, stamp: m.commitStamp}
	m.snaps[s.id] = s.stamp
	return s
}

// ID returns the snapshot's registry id (unique per manager).
func (s *Snap) ID() uint64 { return s.id }

// Stamp returns the snapshot's version timestamp.
func (s *Snap) Stamp() page.LSN { return s.stamp }

// Close releases the snapshot's pin on the version watermark. Idempotent.
func (s *Snap) Close() {
	s.m.mu.Lock()
	delete(s.m.snaps, s.id)
	s.m.mu.Unlock()
}

// OldestSnapshot returns the smallest stamp of any open snapshot and true,
// or (0, false) when none are open. This is the version-GC watermark: any
// image superseded at or before the returned stamp is still reachable.
func (m *Manager) OldestSnapshot() (page.LSN, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.snaps) == 0 {
		return 0, false
	}
	min := page.LSN(0)
	first := true
	for _, st := range m.snaps {
		if first || st < min {
			min, first = st, false
		}
	}
	return min, true
}

// SnapshotCount returns the number of open snapshots.
func (m *Manager) SnapshotCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.snaps)
}
