// Package tx implements BeSS transaction management: ACID transactions over
// the WAL and lock manager (paper §3), with runtime rollback under CLR
// protection and two-phase commit for distributed transactions.
//
// The package opts into bess-vet's walorder analyzer: any store through the
// Pager interface must follow a WAL append on the same path (log-before-data;
// DESIGN.md §4f). The one deliberate exception — Abort's before-image
// restore — carries an inline waiver.
//
//bess:walorder
//bess:walsink Pager.WritePage
package tx

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bess/internal/hooks"
	"bess/internal/lock"
	"bess/internal/page"
	"bess/internal/wal"
	"bess/internal/walcheck"
)

// State is a transaction's lifecycle state.
type State uint8

// Transaction states.
const (
	Active State = iota
	Prepared
	Committed
	Aborted
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Prepared:
		return "prepared"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Errors returned by the transaction layer.
var (
	ErrNotActive   = errors.New("tx: transaction not active")
	ErrNotPrepared = errors.New("tx: transaction not prepared")
)

// Manager creates and tracks transactions against one log + lock manager +
// page store. Safe for concurrent use.
type Manager struct {
	log   *wal.Log
	locks *lock.Manager
	pager wal.Pager
	hooks *hooks.Registry

	mu     sync.Mutex
	nextID uint64
	active map[uint64]*Tx

	// LockTimeout is passed to lock acquisitions made through transactions;
	// the paper uses timeouts for distributed deadlock detection.
	LockTimeout time.Duration

	commits, aborts int64

	// Multiversion read support (DESIGN.md §7). commitHook/abortHook are set
	// once at open time, before any transaction runs, and are read without
	// m.mu thereafter. The commit hook runs after the commit record is
	// durable but before locks release, so a version store can publish the
	// committed images while the writer still excludes concurrent stagers.
	commitHook func(txID uint64, commitLSN page.LSN)
	abortHook  func(txID uint64)

	commitStamp page.LSN            // guarded by mu; latest published commit LSN (the version clock)
	snaps       map[uint64]page.LSN // guarded by mu; open snapshot id → stamp
	nextSnap    uint64              // guarded by mu
}

// NewManager wires a transaction manager. hooks may be nil.
func NewManager(log *wal.Log, locks *lock.Manager, pager wal.Pager, hk *hooks.Registry) *Manager {
	return &Manager{
		log:    log,
		locks:  locks,
		pager:  pager,
		hooks:  hk,
		nextID: 1,
		active: make(map[uint64]*Tx),
	}
}

// Tx is one transaction.
type Tx struct {
	m       *Manager
	id      uint64
	mu      sync.Mutex
	state   State
	lastLSN page.LSN
	// dirty tracks pages this tx updated, with the LSN of the first update
	// (recLSN) — feeds checkpoints.
	dirty map[page.ID]page.LSN
}

// Begin starts a transaction.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	t := &Tx{m: m, id: id, state: Active, dirty: make(map[page.ID]page.LSN)}
	m.active[id] = t
	m.mu.Unlock()
	if m.hooks != nil {
		_ = m.hooks.Fire(hooks.EvTxBegin, id)
	}
	return t
}

// BeginWithID starts a transaction with a caller-chosen id (servers use the
// global transaction id of a distributed commit). Panics on reuse of a live
// id.
func (m *Manager) BeginWithID(id uint64) *Tx {
	m.mu.Lock()
	if _, dup := m.active[id]; dup {
		m.mu.Unlock()
		panic(fmt.Sprintf("tx: id %d already active", id))
	}
	if id >= m.nextID {
		m.nextID = id + 1
	}
	t := &Tx{m: m, id: id, state: Active, dirty: make(map[page.ID]page.LSN)}
	m.active[id] = t
	m.mu.Unlock()
	if m.hooks != nil {
		_ = m.hooks.Fire(hooks.EvTxBegin, id)
	}
	return t
}

// AdoptPrepared re-registers an in-doubt 2PC branch found by restart
// recovery: the transaction resumes in the Prepared state with its log
// chain intact, ready for Commit or Abort when the decision arrives.
func (m *Manager) AdoptPrepared(id uint64, lastLSN page.LSN) *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, live := m.active[id]; live {
		return t
	}
	if id >= m.nextID {
		m.nextID = id + 1
	}
	t := &Tx{m: m, id: id, state: Prepared, lastLSN: lastLSN, dirty: make(map[page.ID]page.LSN)}
	m.active[id] = t
	return t
}

// ID returns the transaction id.
func (t *Tx) ID() uint64 { return t.id }

// State returns the current state.
func (t *Tx) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// LastLSN returns the LSN of the transaction's most recent log record.
func (t *Tx) LastLSN() page.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// Lock acquires (or upgrades) a lock on behalf of the transaction, firing
// the lock hooks and mapping deadlocks to the deadlock event.
func (t *Tx) Lock(name lock.Name, mode lock.Mode) error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	t.mu.Unlock()
	err := t.m.locks.Acquire(lock.TxID(t.id), name, mode, t.m.LockTimeout)
	if t.m.hooks != nil {
		if err == nil {
			_ = t.m.hooks.Fire(hooks.EvLockAcquire, name)
		} else if errors.Is(err, lock.ErrDeadlock) {
			_ = t.m.hooks.Fire(hooks.EvDeadlock, t.id)
		}
	}
	return err
}

// LogUpdate appends an update record for a byte-range change the caller has
// made (or is about to make) to pid. The caller supplies before/after
// images; WAL ordering (log before page write reaches disk) is enforced by
// the buffer layer calling Log.Flush before eviction.
func (t *Tx) LogUpdate(pid page.ID, off uint32, before, after []byte) (page.LSN, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return 0, ErrNotActive
	}
	lsn, err := t.m.log.Append(&wal.Record{
		Type: wal.TUpdate, Tx: t.id, PrevLSN: t.lastLSN,
		Page: pid, Off: off,
		Before: append([]byte(nil), before...),
		After:  append([]byte(nil), after...),
	})
	if err != nil {
		return 0, err
	}
	walcheck.NoteUpdate(pid)
	t.lastLSN = lsn
	if _, ok := t.dirty[pid]; !ok {
		t.dirty[pid] = lsn
	}
	return lsn, nil
}

// DirtyPages returns the tx's dirty pages with their recLSNs.
func (t *Tx) DirtyPages() []wal.CkptPage {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]wal.CkptPage, 0, len(t.dirty))
	for pid, lsn := range t.dirty {
		out = append(out, wal.CkptPage{Page: pid, RecLSN: lsn})
	}
	return out
}

// Commit logs and forces a commit record, releases all locks (strict 2PL),
// and retires the transaction.
func (t *Tx) Commit() error {
	t.mu.Lock()
	if t.state != Active && t.state != Prepared {
		t.mu.Unlock()
		return ErrNotActive
	}
	lsn, err := t.m.log.Append(&wal.Record{Type: wal.TCommit, Tx: t.id, PrevLSN: t.lastLSN})
	if err != nil {
		t.mu.Unlock()
		return err
	}
	if err := t.m.log.Flush(lsn); err != nil {
		t.mu.Unlock()
		return err
	}
	if _, err := t.m.log.Append(&wal.Record{Type: wal.TEnd, Tx: t.id}); err != nil {
		t.mu.Unlock()
		return err
	}
	t.state = Committed
	t.lastLSN = lsn
	t.mu.Unlock()
	// Version-store publication order: append the committed images to the
	// version chains (hook) while this writer's X locks still exclude any
	// concurrent stager of the same segments, then advance the version clock
	// so new snapshots can observe them, then release locks.
	if h := t.m.commitHook; h != nil {
		h(t.id, lsn)
	}
	t.m.noteCommit(lsn)
	t.finish()
	if t.m.hooks != nil {
		_ = t.m.hooks.Fire(hooks.EvTxCommit, t.id)
	}
	t.m.mu.Lock()
	t.m.commits++
	t.m.mu.Unlock()
	return nil
}

// Abort rolls the transaction back at runtime: it walks the update chain in
// reverse, restores before-images through the pager, writes CLRs, then logs
// abort+end and releases locks.
func (t *Tx) Abort() error {
	t.mu.Lock()
	if t.state != Active && t.state != Prepared {
		t.mu.Unlock()
		return ErrNotActive
	}
	next := t.lastLSN
	t.mu.Unlock()

	// The records to undo may still be buffered; force through this
	// transaction's last record so ReadRecord sees the chain — no need to
	// wait on other transactions' unforced tails beyond it.
	if err := t.m.log.Flush(next); err != nil {
		return err
	}
	buf := make([]byte, page.Size)
	for next != 0 {
		rec, err := t.m.log.ReadRecord(next)
		if err != nil {
			return fmt.Errorf("tx %d: abort read at %d: %w", t.id, next, err)
		}
		switch rec.Type {
		case wal.TUpdate:
			if len(rec.Before) > 0 && t.m.pager != nil {
				if err := t.m.pager.ReadPage(rec.Page, buf); err != nil {
					return err
				}
				copy(buf[rec.Off:], rec.Before)
				// The update record being undone covers this restore: its
				// before-image is exactly the bytes going back. The CLR
				// below re-describes them for redo.
				walcheck.NoteUpdate(rec.Page)
				//bess:walorder ignore=undo restores a before-image whose update record is already durable; the CLR appended below re-logs the restore for redo
				if err := t.m.pager.WritePage(rec.Page, buf); err != nil {
					return err
				}
			}
			if _, err := t.m.log.Append(&wal.Record{
				Type: wal.TCLR, Tx: t.id, Page: rec.Page, Off: rec.Off,
				After: rec.Before, UndoNext: rec.PrevLSN,
			}); err != nil {
				return err
			}
			next = rec.PrevLSN
		case wal.TCLR:
			next = rec.UndoNext
		default:
			next = rec.PrevLSN
		}
	}
	lsn, err := t.m.log.Append(&wal.Record{Type: wal.TAbort, Tx: t.id})
	if err != nil {
		return err
	}
	if _, err := t.m.log.Append(&wal.Record{Type: wal.TEnd, Tx: t.id}); err != nil {
		return err
	}
	if err := t.m.log.Flush(lsn); err != nil {
		return err
	}
	t.mu.Lock()
	t.state = Aborted
	t.mu.Unlock()
	if h := t.m.abortHook; h != nil {
		h(t.id)
	}
	t.finish()
	if t.m.hooks != nil {
		_ = t.m.hooks.Fire(hooks.EvTxAbort, t.id)
	}
	t.m.mu.Lock()
	t.m.aborts++
	t.m.mu.Unlock()
	return nil
}

// Prepare logs and forces a prepare record (2PC participant vote). The
// transaction holds its locks until the decision.
func (t *Tx) Prepare() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return ErrNotActive
	}
	lsn, err := t.m.log.Append(&wal.Record{Type: wal.TPrepare, Tx: t.id, PrevLSN: t.lastLSN})
	if err != nil {
		return err
	}
	if err := t.m.log.Flush(lsn); err != nil {
		return err
	}
	t.state = Prepared
	t.lastLSN = lsn
	return nil
}

// finish releases locks and removes the tx from the active table.
func (t *Tx) finish() {
	t.m.locks.ReleaseAll(lock.TxID(t.id))
	t.m.mu.Lock()
	delete(t.m.active, t.id)
	t.m.mu.Unlock()
	if t.m.hooks != nil {
		_ = t.m.hooks.Fire(hooks.EvLockRelease, t.id)
	}
}

// ActiveSnapshot returns checkpoint entries for all live transactions.
func (m *Manager) ActiveSnapshot() ([]wal.CkptTx, []wal.CkptPage) {
	m.mu.Lock()
	txs := make([]*Tx, 0, len(m.active))
	for _, t := range m.active {
		txs = append(txs, t)
	}
	m.mu.Unlock()
	var at []wal.CkptTx
	var dp []wal.CkptPage
	seen := make(map[page.ID]bool)
	for _, t := range txs {
		t.mu.Lock()
		at = append(at, wal.CkptTx{Tx: t.id, LastLSN: t.lastLSN})
		for pid, lsn := range t.dirty {
			if !seen[pid] {
				seen[pid] = true
				dp = append(dp, wal.CkptPage{Page: pid, RecLSN: lsn})
			}
		}
		t.mu.Unlock()
	}
	return at, dp
}

// Checkpoint writes a fuzzy checkpoint of the live state.
func (m *Manager) Checkpoint() (page.LSN, error) {
	at, dp := m.ActiveSnapshot()
	return wal.Checkpoint(m.log, at, dp)
}

// Counts reports cumulative commits and aborts.
func (m *Manager) Counts() (commits, aborts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits, m.aborts
}

// ActiveCount returns the number of live transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
