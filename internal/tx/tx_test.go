package tx

import (
	"testing"
	"time"

	"bess/internal/hooks"
	"bess/internal/lock"
	"bess/internal/page"
	"bess/internal/wal"
)

// memPager mirrors the wal test pager.
type memPager struct{ pages map[page.ID][]byte }

func newMemPager() *memPager { return &memPager{pages: make(map[page.ID][]byte)} }

func (p *memPager) ReadPage(id page.ID, buf []byte) error {
	if pg, ok := p.pages[id]; ok {
		copy(buf, pg)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

func (p *memPager) WritePage(id page.ID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	p.pages[id] = cp
	return nil
}

func (p *memPager) set(id page.ID, off int, b []byte) {
	buf := make([]byte, page.Size)
	p.ReadPage(id, buf)
	copy(buf[off:], b)
	p.WritePage(id, buf)
}

func (p *memPager) get(id page.ID, off, n int) []byte {
	buf := make([]byte, page.Size)
	p.ReadPage(id, buf)
	return buf[off : off+n]
}

func newEnv() (*Manager, *memPager, *wal.Log, *hooks.Registry) {
	l := wal.NewMem()
	lm := lock.NewManager()
	pg := newMemPager()
	hk := hooks.NewRegistry()
	return NewManager(l, lm, pg, hk), pg, l, hk
}

func TestCommitForcesLog(t *testing.T) {
	m, pg, l, _ := newEnv()
	pid := page.ID{Area: 1, Page: 3}
	tr := m.Begin()
	if tr.State() != Active {
		t.Fatal("not active")
	}
	if _, err := tr.LogUpdate(pid, 0, []byte{0, 0, 0}, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	pg.set(pid, 0, []byte("abc"))
	if l.FlushedLSN() != wal.FirstLSN() {
		t.Fatal("log flushed before commit")
	}
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() <= wal.FirstLSN() {
		t.Fatal("commit did not force the log")
	}
	if tr.State() != Committed {
		t.Fatalf("state = %v", tr.State())
	}
	if c, _ := m.Counts(); c != 1 {
		t.Fatalf("commits = %d", c)
	}
	if m.ActiveCount() != 0 {
		t.Fatal("tx still active")
	}
	// Further operations fail.
	if _, err := tr.LogUpdate(pid, 0, nil, nil); err != ErrNotActive {
		t.Fatalf("update after commit: %v", err)
	}
	if err := tr.Commit(); err != ErrNotActive {
		t.Fatalf("double commit: %v", err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	m, pg, _, _ := newEnv()
	pid := page.ID{Area: 1, Page: 3}
	pg.set(pid, 0, []byte("old-value"))

	tr := m.Begin()
	before := pg.get(pid, 0, 9)
	tr.LogUpdate(pid, 0, before, []byte("new-value"))
	pg.set(pid, 0, []byte("new-value"))
	tr.LogUpdate(pid, 20, []byte{0, 0}, []byte("zz"))
	pg.set(pid, 20, []byte("zz"))

	if err := tr.Abort(); err != nil {
		t.Fatal(err)
	}
	if string(pg.get(pid, 0, 9)) != "old-value" {
		t.Fatalf("first update not undone: %q", pg.get(pid, 0, 9))
	}
	if got := pg.get(pid, 20, 2); got[0] != 0 || got[1] != 0 {
		t.Fatalf("second update not undone: %v", got)
	}
	if tr.State() != Aborted {
		t.Fatalf("state = %v", tr.State())
	}
	if _, a := m.Counts(); a != 1 {
		t.Fatalf("aborts = %d", a)
	}
}

func TestLocksReleasedAtEnd(t *testing.T) {
	m, _, _, _ := newEnv()
	name := lock.PageName(1, 10, 0)
	t1 := m.Begin()
	if err := t1.Lock(name, lock.X); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	m.LockTimeout = 20 * time.Millisecond
	if err := t2.Lock(name, lock.X); err != lock.ErrTimeout {
		t.Fatalf("conflicting lock: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock(name, lock.X); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
	t2.Abort()
}

func TestHooksFire(t *testing.T) {
	m, _, _, hk := newEnv()
	var events []hooks.Event
	for _, e := range []hooks.Event{hooks.EvTxBegin, hooks.EvTxCommit, hooks.EvTxAbort} {
		e := e
		hk.Register(e, func(i *hooks.Info) error {
			events = append(events, i.Event)
			return nil
		})
	}
	t1 := m.Begin()
	t1.Commit()
	t2 := m.Begin()
	t2.Abort()
	want := []hooks.Event{hooks.EvTxBegin, hooks.EvTxCommit, hooks.EvTxBegin, hooks.EvTxAbort}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v", events)
		}
	}
}

func TestCrashAfterCommitRecovers(t *testing.T) {
	m, pg, l, _ := newEnv()
	pid := page.ID{Area: 1, Page: 1}
	tr := m.Begin()
	tr.LogUpdate(pid, 0, []byte{0, 0, 0, 0}, []byte("DATA"))
	// Page write is lost (never reached "disk"): no-force.
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash and restart.
	crashed, err := wal.OpenMemFrom(l.DurableBytes())
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Recover(crashed, pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Winners) != 1 {
		t.Fatalf("winners = %v", st.Winners)
	}
	if string(pg.get(pid, 0, 4)) != "DATA" {
		t.Fatal("committed data lost across crash")
	}
}

func TestCrashMidTransactionRollsBack(t *testing.T) {
	m, pg, l, _ := newEnv()
	pid := page.ID{Area: 1, Page: 1}
	tr := m.Begin()
	tr.LogUpdate(pid, 0, []byte{0, 0, 0}, []byte("BAD"))
	pg.set(pid, 0, []byte("BAD"))
	l.Flush(0) // stolen page forced the WAL
	// Crash before commit.
	crashed, err := wal.OpenMemFrom(l.DurableBytes())
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Recover(crashed, pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Losers) != 1 || st.Losers[0] != tr.ID() {
		t.Fatalf("losers = %v", st.Losers)
	}
	if got := pg.get(pid, 0, 3); got[0] != 0 {
		t.Fatalf("loser survived: %q", got)
	}
}

func TestPrepareMakesTxInDoubt(t *testing.T) {
	m, pg, l, _ := newEnv()
	pid := page.ID{Area: 1, Page: 2}
	tr := m.Begin()
	tr.LogUpdate(pid, 0, []byte{0}, []byte{9})
	pg.set(pid, 0, []byte{9})
	if err := tr.Prepare(); err != nil {
		t.Fatal(err)
	}
	if tr.State() != Prepared {
		t.Fatalf("state = %v", tr.State())
	}
	// Crash: the prepared tx is in doubt, its effect is neither undone nor
	// committed.
	crashed, _ := wal.OpenMemFrom(l.DurableBytes())
	st, err := wal.Recover(crashed, pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.InDoubt) != 1 || st.InDoubt[0] != tr.ID() {
		t.Fatalf("in-doubt = %v", st.InDoubt)
	}
	if len(st.Losers) != 0 {
		t.Fatalf("prepared tx treated as loser: %v", st.Losers)
	}
	if pg.get(pid, 0, 1)[0] != 9 {
		t.Fatal("prepared effect undone before decision")
	}
}

func TestPreparedTxCanCommitOrAbort(t *testing.T) {
	m, pg, _, _ := newEnv()
	pid := page.ID{Area: 1, Page: 2}
	tr := m.Begin()
	tr.LogUpdate(pid, 0, []byte{0}, []byte{7})
	pg.set(pid, 0, []byte{7})
	tr.Prepare()
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}

	tr2 := m.Begin()
	tr2.LogUpdate(pid, 1, []byte{0}, []byte{8})
	pg.set(pid, 1, []byte{8})
	tr2.Prepare()
	if err := tr2.Abort(); err != nil {
		t.Fatal(err)
	}
	if pg.get(pid, 0, 1)[0] != 7 {
		t.Fatal("committed branch lost")
	}
	if pg.get(pid, 1, 1)[0] != 0 {
		t.Fatal("aborted branch survived")
	}
}

func TestCheckpointCapturesActiveState(t *testing.T) {
	m, pg, l, _ := newEnv()
	pid := page.ID{Area: 1, Page: 4}
	tr := m.Begin()
	tr.LogUpdate(pid, 0, []byte{0}, []byte{1})
	pg.set(pid, 0, []byte{1})
	lsn, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := l.ReadRecord(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.ActiveTxs) != 1 || rec.ActiveTxs[0].Tx != tr.ID() {
		t.Fatalf("checkpoint active txs = %+v", rec.ActiveTxs)
	}
	if len(rec.DirtyPages) != 1 || rec.DirtyPages[0].Page != pid {
		t.Fatalf("checkpoint dirty pages = %+v", rec.DirtyPages)
	}
	tr.Abort()
}

func TestBeginWithID(t *testing.T) {
	m, _, _, _ := newEnv()
	tr := m.BeginWithID(500)
	if tr.ID() != 500 {
		t.Fatalf("id = %d", tr.ID())
	}
	// Next auto id is above.
	tr2 := m.Begin()
	if tr2.ID() <= 500 {
		t.Fatalf("auto id %d not advanced", tr2.ID())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate BeginWithID did not panic")
		}
	}()
	m.BeginWithID(tr2.ID())
}

func TestStateString(t *testing.T) {
	if Active.String() != "active" || Prepared.String() != "prepared" ||
		Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("state strings")
	}
}
