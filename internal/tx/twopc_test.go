package tx

import (
	"errors"
	"testing"

	"bess/internal/page"
	"bess/internal/wal"
)

// localPart adapts a Manager to the Participant interface, with one branch
// transaction per global id — the shape servers use.
type localPart struct {
	m        *Manager
	pg       *memPager
	pid      page.ID
	val      byte
	branch   *Tx
	failPrep bool

	prepared, committed, aborted int
}

func (p *localPart) Prepare(gid uint64) error {
	if p.failPrep {
		return errors.New("refused")
	}
	p.branch = p.m.BeginWithID(gid)
	p.branch.LogUpdate(p.pid, 0, []byte{0}, []byte{p.val})
	p.pg.set(p.pid, 0, []byte{p.val})
	if err := p.branch.Prepare(); err != nil {
		return err
	}
	p.prepared++
	return nil
}

func (p *localPart) Commit(gid uint64) error {
	p.committed++
	return p.branch.Commit()
}

func (p *localPart) Abort(gid uint64) error {
	p.aborted++
	if p.branch == nil {
		return nil
	}
	return p.branch.Abort()
}

func newPart(val byte) *localPart {
	m, pg, _, _ := newEnv()
	return &localPart{m: m, pg: pg, pid: page.ID{Area: 1, Page: 1}, val: val}
}

func TestTwoPCAllYesCommits(t *testing.T) {
	coordLog := wal.NewMem()
	c := NewCoordinator(coordLog)
	p1, p2 := newPart(11), newPart(22)
	if err := c.CommitDistributed(777, []Participant{p1, p2}); err != nil {
		t.Fatal(err)
	}
	if p1.committed != 1 || p2.committed != 1 {
		t.Fatalf("commits = %d/%d", p1.committed, p2.committed)
	}
	if p1.pg.get(p1.pid, 0, 1)[0] != 11 || p2.pg.get(p2.pid, 0, 1)[0] != 22 {
		t.Fatal("branch effects missing")
	}
	d, err := c.Decision(777)
	if err != nil {
		t.Fatal(err)
	}
	if d != "commit" {
		t.Fatalf("decision = %q", d)
	}
}

func TestTwoPCNoVoteAborts(t *testing.T) {
	c := NewCoordinator(wal.NewMem())
	p1 := newPart(11)
	p2 := newPart(22)
	p2.failPrep = true
	err := c.CommitDistributed(888, []Participant{p1, p2})
	var no *ErrVotedNo
	if !errors.As(err, &no) || no.Index != 1 {
		t.Fatalf("err = %v", err)
	}
	// p1 prepared then aborted; its effect is rolled back.
	if p1.aborted != 1 {
		t.Fatalf("p1 aborted = %d", p1.aborted)
	}
	if p1.pg.get(p1.pid, 0, 1)[0] != 0 {
		t.Fatal("aborted branch effect survives")
	}
	if p2.committed != 0 && p2.aborted != 0 {
		t.Fatal("refusing participant got a decision call")
	}
	d, _ := c.Decision(888)
	if d != "abort" {
		t.Fatalf("decision = %q", d)
	}
}

func TestTwoPCNoParticipants(t *testing.T) {
	c := NewCoordinator(wal.NewMem())
	if err := c.CommitDistributed(1, nil); err == nil {
		t.Fatal("empty participant list accepted")
	}
}

func TestTwoPCDecisionSurvivesCoordinatorCrash(t *testing.T) {
	coordLog := wal.NewMem()
	c := NewCoordinator(coordLog)
	p1 := newPart(5)
	if err := c.CommitDistributed(99, []Participant{p1}); err != nil {
		t.Fatal(err)
	}
	// Coordinator crashes; a new one over the durable log still knows.
	revived, err := wal.OpenMemFrom(coordLog.DurableBytes())
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCoordinator(revived)
	d, err := c2.Decision(99)
	if err != nil {
		t.Fatal(err)
	}
	if d != "commit" {
		t.Fatalf("revived decision = %q", d)
	}
	// Unknown gid: presumed abort (no decision record).
	d, _ = c2.Decision(12345)
	if d != "" {
		t.Fatalf("phantom decision %q", d)
	}
}
