package tx

import (
	"errors"
	"fmt"

	"bess/internal/page"
	"bess/internal/wal"
)

// Participant is one 2PC participant's interface as seen by a coordinator:
// a BeSS server reachable over RPC, or a local branch.
type Participant interface {
	// Prepare asks the participant to vote on global transaction gid.
	// nil = YES (the participant has forced a prepare record); error = NO.
	Prepare(gid uint64) error
	// Commit delivers the commit decision.
	Commit(gid uint64) error
	// Abort delivers the abort decision.
	Abort(gid uint64) error
}

// ErrVotedNo reports which participant refused to prepare.
type ErrVotedNo struct {
	Index int
	Cause error
}

func (e *ErrVotedNo) Error() string {
	return fmt.Sprintf("tx: participant %d voted no: %v", e.Index, e.Cause)
}

func (e *ErrVotedNo) Unwrap() error { return e.Cause }

// Coordinator drives two-phase commit (paper §3: "the two phase commit (2PC)
// protocol is employed for distributed commits"). The coordinator logs its
// decision before propagating it, so restart can complete in-doubt branches.
type Coordinator struct {
	log *wal.Log // decision log; may be the server's main log
}

// NewCoordinator wires a coordinator to a decision log.
func NewCoordinator(log *wal.Log) *Coordinator {
	return &Coordinator{log: log}
}

// CommitDistributed runs 2PC for gid over the participants. On any NO vote
// or prepare failure, the decision is abort: prepared participants are told
// to roll back. The decision (commit or abort) is logged and forced before
// phase 2.
func (c *Coordinator) CommitDistributed(gid uint64, parts []Participant) error {
	if len(parts) == 0 {
		return errors.New("tx: distributed commit with no participants")
	}
	// Phase 1: collect votes.
	var voteErr error
	prepared := 0
	for i, p := range parts {
		if err := p.Prepare(gid); err != nil {
			voteErr = &ErrVotedNo{Index: i, Cause: err}
			break
		}
		prepared++
	}

	if voteErr != nil {
		// Decision: abort. Presumed abort lets us skip forcing the record,
		// but we log it for the statistics and for audit.
		if _, err := c.log.Append(&wal.Record{Type: wal.TAbort, Tx: gid}); err != nil {
			return err
		}
		_ = c.log.Flush(0)
		for i := 0; i < prepared; i++ {
			_ = parts[i].Abort(gid)
		}
		return voteErr
	}

	// Decision: commit. Force the decision record before phase 2 so a
	// coordinator crash cannot forget a communicated commit.
	lsn, err := c.log.Append(&wal.Record{Type: wal.TCommit, Tx: gid})
	if err != nil {
		return err
	}
	if err := c.log.Flush(lsn); err != nil {
		return err
	}
	// Phase 2: deliver the decision. Failures here leave in-doubt branches
	// that resolve by re-asking the coordinator (the decision is durable).
	var firstErr error
	for i, p := range parts {
		if err := p.Commit(gid); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tx: participant %d commit delivery: %w", i, err)
		}
	}
	if _, err := c.log.Append(&wal.Record{Type: wal.TEnd, Tx: gid}); err != nil {
		return err
	}
	return firstErr
}

// Decision reports the durable outcome recorded for gid: "commit", "abort",
// or "" if no decision was logged (presumed abort). Recovering in-doubt
// participants ask this after a crash.
func (c *Coordinator) Decision(gid uint64) (string, error) {
	if err := c.log.Flush(0); err != nil {
		return "", err
	}
	out := ""
	if err := c.log.Iterate(0, func(_ page.LSN, rec *wal.Record) error {
		if rec.Tx != gid {
			return nil
		}
		switch rec.Type {
		case wal.TCommit:
			out = "commit"
		case wal.TAbort:
			out = "abort"
		}
		return nil
	}); err != nil {
		return "", err
	}
	return out, nil
}
