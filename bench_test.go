// Package bess holds the repository-level benchmark suite: one benchmark
// (or family) per experiment E1–E11 from DESIGN.md §4, each reproducing a
// figure or performance claim of the paper. cmd/bess-bench runs the same
// harness outside `go test` and prints the tables recorded in
// EXPERIMENTS.md.
package bess

import (
	"fmt"
	"testing"

	"bess/internal/bench"
)

// --- E1: dereference cost (paper §2.1/§5: VM pointers vs "slow OIDs") ---

// The comparison that reproduces the paper's claim is swizzled-ref vs
// eos-style-oid: both run through the full storage-manager machinery, and
// the OID path pays resolution + uniquifier validation on every hop. The
// raw-hashmap row is only a lower bound with no storage manager at all
// (no protection checks, no transactions), included for calibration.
func BenchmarkE1Dereference(b *testing.B) {
	env := bench.SetupE1(1024)
	defer env.Close()
	b.Run("bess-swizzled-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.ChaseBeSS(64)
		}
	})
	b.Run("eos-style-oid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.ChaseGlobal(64)
		}
	})
	b.Run("raw-hashmap-floor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.ChaseOID(64)
		}
	})
}

// --- E2: operation modes (paper §4.1: in-place wins short transactions) ---

func BenchmarkE2OperationModes(b *testing.B) {
	env := bench.SetupE2(64)
	defer env.Close()
	for _, k := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shared-memory/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.ShortTxShared(k)
			}
		})
		b.Run(fmt.Sprintf("copy-on-access/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env.ShortTxCopy(k)
			}
		})
	}
}

// --- E3: reservation greediness (paper §2.1: "less greedy" than [19,30,34]) ---

func BenchmarkE3Reservation(b *testing.B) {
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		b.Run(fmt.Sprintf("fraction=%v", frac), func(b *testing.B) {
			var r bench.E3Result
			for i := 0; i < b.N; i++ {
				r = bench.RunE3(200, frac)
			}
			b.ReportMetric(float64(r.LazyReserved), "lazy-frames")
			b.ReportMetric(float64(r.EagerReserved), "eager-frames")
			b.ReportMetric(float64(r.LazyMapped), "mapped-frames")
		})
	}
}

// --- E4: two-level clock vs LRU (paper §4.2, Figure 4) ---

func BenchmarkE4Clock(b *testing.B) {
	for _, slots := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			var r bench.E4Result
			for i := 0; i < b.N; i++ {
				r = bench.RunE4(256, slots, 4, 20000, 42)
			}
			b.ReportMetric(r.ClockHitRatio*100, "clock-hit%")
			b.ReportMetric(r.LRUHitRatio*100, "lru-hit%")
		})
	}
}

// --- E5: large-object byte ranges vs whole rewrite (paper §2.1, [3,4]) ---

func BenchmarkE5LargeObject(b *testing.B) {
	for _, mb := range []int64{1, 8, 32} {
		b.Run(fmt.Sprintf("size=%dMB", mb), func(b *testing.B) {
			var r bench.E5Result
			for i := 0; i < b.N; i++ {
				r = bench.RunE5(mb<<20, 4096)
			}
			b.ReportMetric(float64(r.TreeWrites), "tree-seg-writes")
			b.ReportMetric(float64(r.RewriteIOs), "rewrite-seg-writes")
		})
	}
}

// E5 ablation: the user-provided size hint trades index size against edit
// cost (paper §2.1: "hints about the potential size of the object").
func BenchmarkE5AblationSegmentHint(b *testing.B) {
	for _, hint := range []int64{1 << 20, 16 << 20, 256 << 20} {
		b.Run(fmt.Sprintf("hint=%dMB", hint>>20), func(b *testing.B) {
			var segs int
			var writes int64
			for i := 0; i < b.N; i++ {
				segs, writes = bench.RunE5Ablation(8<<20, hint, 4096)
			}
			b.ReportMetric(float64(segs), "segments")
			b.ReportMetric(float64(writes), "edit-seg-writes")
		})
	}
}

// --- E6: inter-transaction caching + callbacks (paper §3) ---

func BenchmarkE6Callback(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("segs=%d", k), func(b *testing.B) {
			var r bench.E6Result
			for i := 0; i < b.N; i++ {
				r = bench.RunE6(20, k)
			}
			b.ReportMetric(r.MsgsPerTxCached, "msgs/tx-cached")
			b.ReportMetric(r.MsgsPerTxNoCache, "msgs/tx-nocache")
		})
	}
}

// --- E7: update detection — protection faults vs software dirty calls (paper §2.2–§2.3) ---

func BenchmarkE7Protection(b *testing.B) {
	for _, w := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("writes=%d", w), func(b *testing.B) {
			var r bench.E7Result
			for i := 0; i < b.N; i++ {
				r = bench.RunE7(64, w)
			}
			b.ReportMetric(float64(r.HWFaults), "hw-faults")
			b.ReportMetric(float64(r.HWProtectCalls), "hw-protects")
			b.ReportMetric(float64(r.SWLockRequests), "sw-lockreqs")
		})
	}
}

// --- E8: ARIES restart vs log volume (paper §3, [21]) ---

func BenchmarkE8Recovery(b *testing.B) {
	for _, cfg := range []struct {
		txns int
		ckpt bool
	}{{50, false}, {50, true}, {500, false}, {500, true}} {
		b.Run(fmt.Sprintf("txns=%d/ckpt=%v", cfg.txns, cfg.ckpt), func(b *testing.B) {
			var r bench.E8Result
			for i := 0; i < b.N; i++ {
				r = bench.RunE8(cfg.txns, 10, cfg.ckpt)
			}
			b.ReportMetric(float64(r.RedoApplied), "redo")
			b.ReportMetric(float64(r.UndoApplied), "undo")
			b.ReportMetric(float64(r.RecordsAnalyzed), "analyzed")
		})
	}
}

// --- E9: multifile parallel scan (paper §2) ---

func BenchmarkE9MultifileScan(b *testing.B) {
	env := bench.SetupE9(2000, 4)
	defer env.Close()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if n := env.Scan(w); n != env.N {
					b.Fatalf("scan saw %d of %d", n, env.N)
				}
			}
		})
	}
}

// --- E10: binary buddy allocation (paper §2, [3]) ---

func BenchmarkE10Buddy(b *testing.B) {
	var r bench.E10Result
	for i := 0; i < b.N; i++ {
		r = bench.RunE10(10000, 16, 7)
	}
	b.ReportMetric(r.Utilization*100, "util%")
	b.ReportMetric(float64(r.Splits)/float64(r.Ops), "splits/op")
	b.ReportMetric(float64(r.Coalesces)/float64(r.Ops), "coalesces/op")
}

// --- E11: commit throughput vs client concurrency (group commit, paper §3) ---

// With a real fsync per WAL force, a single client is bounded by sync
// latency; group commit lets concurrent committers share fsync rounds, so
// commits/s scales with clients while syncs/commit falls below 1.
func BenchmarkE11GroupCommit(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var r bench.E11Result
			for i := 0; i < b.N; i++ {
				r = bench.RunE11(clients, 32)
			}
			b.ReportMetric(r.CommitsPerSec, "commits/s")
			b.ReportMetric(r.SyncsPerCommit, "syncs/commit")
		})
	}
}
