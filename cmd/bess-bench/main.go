// bess-bench runs the experiment harness (E1–E13, E16, E18, E19 from DESIGN.md §4)
// outside `go test` and prints one table per experiment — the rows recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	bess-bench [-only E5] [-quick] [-json]
//
// With -json, experiments that support machine-readable output additionally
// write BENCH_<name>.json into the current directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bess/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E13, E16, E18, E19)")
	quick := flag.Bool("quick", false, "smaller parameters (CI-sized)")
	jsonOut := flag.Bool("json", false, "also write BENCH_<name>.json result files")
	flag.Parse()

	want := func(id string) bool {
		return *only == "" || strings.EqualFold(*only, id)
	}

	if want("E1") {
		e1(*quick)
	}
	if want("E2") {
		e2(*quick)
	}
	if want("E3") {
		e3(*quick)
	}
	if want("E4") {
		e4(*quick)
	}
	if want("E5") {
		e5(*quick)
	}
	if want("E6") {
		e6(*quick)
	}
	if want("E7") {
		e7()
	}
	if want("E8") {
		e8(*quick)
	}
	if want("E9") {
		e9(*quick)
	}
	if want("E10") {
		e10(*quick)
	}
	if want("E11") {
		e11(*quick, *jsonOut)
	}
	if want("E12") {
		e12(*quick, *jsonOut)
	}
	if want("E13") {
		e13(*quick, *jsonOut)
	}
	if want("E16") {
		e16(*quick, *jsonOut)
	}
	if want("E18") {
		e18(*quick, *jsonOut)
	}
	if want("E19") {
		e19(*quick, *jsonOut)
	}
}

// writeJSON writes v as indented JSON to BENCH_<name>.json.
func writeJSON(name string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bess-bench: marshal %s: %v\n", name, err)
		return
	}
	path := "BENCH_" + name + ".json"
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bess-bench: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func header(id, title string) {
	fmt.Printf("\n== %s: %s ==\n", id, title)
}

// timeIt returns ns/op for n runs of f.
func timeIt(n int, f func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func e1(quick bool) {
	header("E1", "pointer dereference — swizzled refs vs OIDs (§2.1, §5)")
	n := 50
	if quick {
		n = 10
	}
	env := bench.SetupE1(1024)
	defer env.Close()
	hops := 64
	swz := timeIt(n, func() { env.ChaseBeSS(hops) }) / float64(hops)
	oidp := timeIt(n, func() { env.ChaseGlobal(hops) }) / float64(hops)
	raw := timeIt(n, func() { env.ChaseOID(hops) }) / float64(hops)
	fmt.Printf("%-24s %10.0f ns/deref\n", "bess swizzled ref", swz)
	fmt.Printf("%-24s %10.0f ns/deref   (%.1fx slower)\n", "eos-style oid", oidp, oidp/swz)
	fmt.Printf("%-24s %10.0f ns/deref   (no storage manager: floor)\n", "raw hashmap", raw)
}

func e2(quick bool) {
	header("E2", "operation modes — in-place vs copy-on-access (§4.1)")
	reps := 200
	if quick {
		reps = 20
	}
	env := bench.SetupE2(64)
	defer env.Close()
	fmt.Printf("%-6s %18s %18s %8s\n", "k", "shared-mem ns/tx", "copy ns/tx", "ratio")
	for _, k := range []int{1, 4, 16, 64} {
		s := timeIt(reps, func() { env.ShortTxShared(k) })
		c := timeIt(reps, func() { env.ShortTxCopy(k) })
		fmt.Printf("%-6d %18.0f %18.0f %8.1fx\n", k, s, c, c/s)
	}
}

func e3(quick bool) {
	header("E3", "address-space reservation — lazy waves vs eager (§2.1)")
	segs := 200
	if quick {
		segs = 50
	}
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "fraction", "lazy-resv", "lazy-mapped", "eager-resv", "fetches")
	for _, f := range []float64{0.05, 0.25, 0.5, 1.0} {
		r := bench.RunE3(segs, f)
		fmt.Printf("%-10.2f %12d %12d %12d %10d\n",
			f, r.LazyReserved, r.LazyMapped, r.EagerReserved, r.SlottedFetches)
	}
}

func e4(quick bool) {
	header("E4", "replacement — two-level clock vs LRU (§4.2)")
	accesses := 20000
	if quick {
		accesses = 4000
	}
	fmt.Printf("%-8s %-8s %12s %12s\n", "slots", "procs", "clock-hit%", "lru-hit%")
	for _, procs := range []int{1, 4} {
		for _, slots := range []int{32, 64, 128} {
			r := bench.RunE4(256, slots, procs, accesses, 42)
			fmt.Printf("%-8d %-8d %12.1f %12.1f\n", slots, procs, r.ClockHitRatio*100, r.LRUHitRatio*100)
		}
	}
}

func e5(quick bool) {
	header("E5", "large-object byte ranges — tree vs whole rewrite (§2.1, [3,4])")
	sizes := []int64{1 << 20, 8 << 20, 32 << 20}
	if quick {
		sizes = []int64{1 << 20, 4 << 20}
	}
	fmt.Printf("%-10s %14s %16s %8s\n", "size", "tree writes", "rewrite writes", "ratio")
	for _, sz := range sizes {
		r := bench.RunE5(sz, 4096)
		fmt.Printf("%-10s %14d %16d %8.0fx\n",
			fmt.Sprintf("%dMB", sz>>20), r.TreeWrites, r.RewriteIOs,
			float64(r.RewriteIOs)/float64(r.TreeWrites))
	}
}

func e6(quick bool) {
	header("E6", "inter-transaction caching + callback locking (§3)")
	txns := 20
	if quick {
		txns = 5
	}
	fmt.Printf("%-8s %16s %16s %8s\n", "segs/tx", "msgs/tx cached", "msgs/tx nocache", "saving")
	for _, k := range []int{1, 8, 32} {
		r := bench.RunE6(txns, k)
		fmt.Printf("%-8d %16.1f %16.1f %7.1fx\n",
			k, r.MsgsPerTxCached, r.MsgsPerTxNoCache, r.MsgsPerTxNoCache/r.MsgsPerTxCached)
	}
}

func e7() {
	header("E7", "update detection — protection faults vs software dirty calls (§2.2–2.3)")
	fmt.Printf("%-14s %10s %12s %14s\n", "reads/writes", "hw-faults", "hw-protects", "sw-lock-reqs")
	for _, w := range []int{0, 8, 64} {
		r := bench.RunE7(64, w)
		fmt.Printf("%2d / %-9d %10d %12d %14d\n", 64, w, r.HWFaults, r.HWProtectCalls, r.SWLockRequests)
	}
}

func e8(quick bool) {
	header("E8", "ARIES restart vs log volume (§3, [21])")
	sets := []int{50, 500}
	if quick {
		sets = []int{50}
	}
	fmt.Printf("%-8s %-6s %10s %8s %8s %8s\n", "txns", "ckpt", "analyzed", "redo", "undo", "losers")
	for _, txns := range sets {
		for _, ck := range []bool{false, true} {
			r := bench.RunE8(txns, 10, ck)
			fmt.Printf("%-8d %-6v %10d %8d %8d %8d\n",
				txns, ck, r.RecordsAnalyzed, r.RedoApplied, r.UndoApplied, r.Losers)
		}
	}
}

func e9(quick bool) {
	header("E9", "multifile parallel scan (§2)")
	objs := 2000
	if quick {
		objs = 400
	}
	env := bench.SetupE9(objs, 4)
	defer env.Close()
	base := 0.0
	fmt.Printf("%-8s %14s %10s\n", "workers", "ns/scan", "speedup")
	for _, w := range []int{1, 2, 4, 8} {
		ns := timeIt(3, func() {
			if n := env.Scan(w); n != env.N {
				panic("scan incomplete")
			}
		})
		if w == 1 {
			base = ns
		}
		fmt.Printf("%-8d %14.0f %9.1fx\n", w, ns, base/ns)
	}
}

func e10(quick bool) {
	header("E10", "binary buddy allocation (§2, [3])")
	ops := 50000
	if quick {
		ops = 5000
	}
	r := bench.RunE10(ops, 16, 7)
	fmt.Printf("ops=%d utilization=%.1f%% splits/op=%.3f coalesces/op=%.3f failures=%d\n",
		r.Ops, r.Utilization*100, float64(r.Splits)/float64(r.Ops),
		float64(r.Coalesces)/float64(r.Ops), r.Failures)
}

func e11(quick bool, jsonOut bool) {
	header("E11", "commit throughput vs client concurrency — group commit (§3)")
	commitsPer := 64
	if quick {
		commitsPer = 16
	}
	fmt.Printf("%-8s %12s %12s %10s %14s %10s\n",
		"clients", "commits", "commits/s", "syncs", "syncs/commit", "grouped")
	var results []bench.E11Result
	base := 0.0
	for _, clients := range []int{1, 2, 4, 8, 16} {
		r := bench.RunE11(clients, commitsPer)
		results = append(results, r)
		if clients == 1 {
			base = r.CommitsPerSec
		}
		fmt.Printf("%-8d %12d %12.0f %10d %14.3f %10d\n",
			r.Clients, r.Commits, r.CommitsPerSec, r.WALSyncs, r.SyncsPerCommit, r.GroupedCommits)
	}
	if base > 0 {
		last := results[len(results)-1]
		fmt.Printf("scaling: %.1fx commits/s at %d clients vs 1\n", last.CommitsPerSec/base, last.Clients)
	}
	if jsonOut {
		writeJSON("E11", results)
	}
}

func e12(quick bool, jsonOut bool) {
	header("E12", "wire protocol — binary framed + coalesced vs double-gob (§3)")
	callsPer, fetches, payload := 2000, 200, 512<<10
	if quick {
		callsPer, fetches, payload = 200, 20, 128<<10
	}
	var report bench.E12Report
	fmt.Printf("small concurrent calls (one shared connection):\n")
	for _, mode := range []string{"gob", "binary"} {
		for _, conc := range []int{1, 2, 4, 8, 16} {
			r := bench.RunE12(mode, conc, callsPer)
			report.SmallCalls = append(report.SmallCalls, r)
			fmt.Printf("  %s\n", bench.FormatE12(r))
		}
	}
	fmt.Printf("segment-fetch bandwidth (sequential round trips):\n")
	for _, mode := range []string{"gob", "binary"} {
		r := bench.RunE12Fetch(mode, fetches, payload)
		report.SegmentFetch = append(report.SegmentFetch, r)
		fmt.Printf("  %s\n", bench.FormatE12Fetch(r))
	}
	if jsonOut {
		writeJSON("E12", report)
	}
}

func e16(quick bool, jsonOut bool) {
	header("E16", "multiversion snapshot reads — read throughput vs writer load (§7)")
	segs, objs, blob := 64, 16, 256
	if quick {
		segs, objs, blob = 16, 8, 128
	}
	env := bench.SetupE16(segs, objs, blob)
	defer env.Close()
	rep := bench.RunE16(env, quick)
	fmt.Printf("dataset: %d segments x %d objects, %d-byte blobs\n", rep.Segments, rep.ObjsPerSeg, rep.BlobBytes)
	fmt.Printf("writer sweep (4 readers, zipf):\n")
	for _, r := range rep.WriterSweep {
		fmt.Printf("  %s\n", bench.FormatE16Row(r))
	}
	fmt.Printf("read retention at max writers: snap %.2f, 2pl-base %.2f\n",
		rep.SnapReadRetention, rep.BaseReadRetention)
	fmt.Printf("mix sweep (4 workers):\n")
	for _, r := range rep.MixSweep {
		fmt.Printf("  %s\n", bench.FormatE16Row(r))
	}
	if jsonOut {
		writeJSON("E16", rep)
	}
}

func e18(quick bool, jsonOut bool) {
	header("E18", "streaming scan — push pipeline vs per-segment fetch (§10)")
	files, segs, objs, blob := 2, 48, 124, 4096
	if quick {
		files, segs, objs, blob = 2, 8, 40, 2048
	}
	env := bench.SetupE18(files, segs, objs, blob)
	defer env.Close()
	rep := bench.RunE18(env)
	fmt.Printf("segment image ~%d KB, emulated net delay %.0f us/op\n", rep.SegmentBytes>>10, rep.NetDelayUs)
	fmt.Printf("cold full-file scan:\n")
	for _, r := range []bench.E18Scan{rep.PullLoopback, rep.StreamLoopback, rep.Pull, rep.Stream} {
		fmt.Printf("  %s\n", bench.FormatE18Scan(r))
	}
	fmt.Printf("speedup: %.2fx lan, %.2fx loopback\n", rep.Speedup, rep.SpeedupLoopback)
	fmt.Printf("parallel: %d files %8.1f MB/s aggregate\n", rep.Parallel.Files, rep.Parallel.MBPerSec)
	fmt.Printf("mixed scan/update (updater on second file):\n")
	for _, m := range []bench.E18Mixed{rep.MixedPull, rep.MixedStream} {
		fmt.Printf("  %s  updates=%d (%.0f/s) %s\n", bench.FormatE18Scan(m.Scan),
			m.UpdateCommits, m.UpdatesPerSec, bench.FormatLatency(m.UpdateLatency))
	}
	if jsonOut {
		writeJSON("E18", rep)
	}
}

func e13(quick bool, jsonOut bool) {
	header("E13", "crash-point enumeration — torn-write torture of recovery (§5)")
	sample := 0 // full enumeration
	if quick {
		sample = 12
	}
	rep, err := bench.RunE13(42, sample)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bess-bench: E13: %v\n", err)
		os.Exit(1)
	}
	scope := "full enumeration"
	if rep.Sampled {
		scope = "sampled"
	}
	fmt.Printf("crash points %d (%s, events %s), tear modes %d, trials %d\n",
		rep.CrashPoints, scope, rep.WorkloadEvents, len(rep.Modes), rep.Trials)
	for _, m := range rep.Modes {
		fmt.Printf("  %-8s %4d trials   %4d consistent   %d inconsistent\n",
			m.Mode, m.Trials, m.Consistent, m.Inconsistent)
	}
	fmt.Printf("recovery: mean %.0f us, max %.0f us; mean redo %.1f, mean undo %.1f per restart\n",
		rep.MeanRecoverUs, rep.MaxRecoverUs, rep.MeanRedo, rep.MeanUndo)
	if rep.Inconsistent > 0 {
		fmt.Printf("FAILURES:\n")
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
	}
	if jsonOut {
		writeJSON("E13", rep)
	}
}

func e19(quick bool, jsonOut bool) {
	header("E19", "corruption-point enumeration — bit-rot torture of detect/repair (§5)")
	sample := 0 // full enumeration
	if quick {
		sample = 12
	}
	rep, err := bench.RunE19(42, sample)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bess-bench: E19: %v\n", err)
		os.Exit(1)
	}
	scope := "full enumeration"
	if rep.Sampled {
		scope = "sampled"
	}
	fmt.Printf("corruption points %d (%s): %d detected, %d repaired, %d quarantined, %d benign, %d silent\n",
		rep.Points, scope, rep.Detected, rep.Repaired, rep.Quarantined, rep.Benign, rep.Silent)
	for _, c := range rep.Categories {
		fmt.Printf("  %-10s %4d points   %4d repaired   %3d quarantined   %3d benign   %d silent\n",
			c.Category, c.Points, c.Repaired, c.Quarantined, c.Benign, c.Silent)
	}
	if rep.Sampled {
		// The sample overweights the (unrepairable-by-design) wal-body
		// category, so the >= 0.9 acceptance only applies to the full run.
		fmt.Printf("repaired fraction %.3f of non-benign (sampled; acceptance runs on the full enumeration)\n", rep.RepairedFrac)
	} else {
		fmt.Printf("repaired fraction %.3f of non-benign (acceptance: >= 0.9, zero silent)\n", rep.RepairedFrac)
	}
	if len(rep.Failures) > 0 {
		fmt.Printf("FAILURES:\n")
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
	}
	if jsonOut {
		writeJSON("E19", rep)
	}
}
