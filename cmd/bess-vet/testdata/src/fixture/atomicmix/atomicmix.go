// Package atomicmix reproduces mixed atomic/plain field access and the
// 32-bit alignment trap for plain 64-bit fields used atomically.
package atomicmix

import "sync/atomic"

// Counter's hits field is touched through sync/atomic, so every access must
// be atomic — and the leading uint32 leaves it 4-aligned on 32-bit layouts.
type Counter struct {
	pad  uint32
	hits int64 // want atomicmix
}

// Inc is the atomic access that taints the field.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Read loads the counter without the atomic package.
func (c *Counter) Read() int64 {
	return c.hits // want atomicmix
}

// Reset stores plainly next to the atomic adds.
func (c *Counter) Reset() {
	c.hits = 0 // want atomicmix
}

// NewCounter touches the field plainly before the value is shared: exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.hits = 0
	return c
}

// resetForTest is declared prepublish: the caller guarantees exclusivity.
//
//bess:prepublish
func resetForTest(c *Counter) {
	c.hits = 0
}

// Aligned keeps the 64-bit field first and accesses it atomically
// everywhere: clean.
type Aligned struct {
	hits int64
	pad  uint32
}

func (a *Aligned) Inc() { atomic.AddInt64(&a.hits, 1) }

func (a *Aligned) Load() int64 { return atomic.LoadInt64(&a.hits) }

// Typed atomics carry their own atomicity and alignment: ignored.
type Typed struct {
	n atomic.Int64
}

func (t *Typed) Bump() int64 {
	t.n.Add(1)
	return t.n.Load()
}

// total is a package-level counter used atomically.
var total int64

func AddTotal(n int64) { atomic.AddInt64(&total, n) }

// TotalSnapshot reads the package counter plainly.
func TotalSnapshot() int64 {
	return total // want atomicmix
}
