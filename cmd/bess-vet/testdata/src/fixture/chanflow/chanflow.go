// Package chanflowfix exercises the channel-protocol analyzer: double
// close and send-after-close on a path, unbuffered sends from goroutines
// with no select escape, and WaitGroup.Add inside the spawned goroutine.
//
//bess:golife
package chanflowfix

import "sync"

var sink int

func work()        { sink++ }
func compute() int { return sink }

// --- double close and send-after-close, path-sensitively ---

func doubleClose(a bool) {
	ch := make(chan int, 1)
	close(ch)
	if a {
		close(ch) // want chanflow
	}
}

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want chanflow
}

// exclusiveClose is clean: the closing path returns before the send.
func exclusiveClose(a bool) {
	ch := make(chan int, 1)
	if a {
		close(ch)
		return
	}
	ch <- 1
	close(ch)
}

// remake is clean: reassignment makes the channel a fresh value.
func remake() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// closeMany is clean: one close per channel, the loop body walks once.
func closeMany(chans []chan int) {
	for _, ch := range chans {
		close(ch)
	}
}

// --- blocked-forever senders: unbuffered sends without a select escape ---

type relay struct{ done chan struct{} }

// Close releases every relay goroutine.
func (r *relay) Close() { close(r.done) }

func (r *relay) leakySend() chan int {
	ch := make(chan int)
	go func() {
		ch <- compute() // want chanflow
		<-r.done
	}()
	return ch
}

// politeSend is clean: the select's receive case lets the sender escape.
func (r *relay) politeSend() chan int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-r.done:
		}
	}()
	return ch
}

// bufferedSend is clean: the buffer absorbs the handoff.
func (r *relay) bufferedSend() chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
		<-r.done
	}()
	return ch
}

// --- WaitGroup.Add inside the spawned goroutine races its Wait ---

func badAdd() { // the race also breaks golife's join proof, hence both
	var wg sync.WaitGroup
	go func() { // want golife
		wg.Add(1) // want chanflow
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func goodAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
