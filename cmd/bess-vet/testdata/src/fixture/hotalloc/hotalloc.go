// Package hotalloc reproduces per-op heap allocations in declared hot
// paths: fresh makes, nil-base clones, string conversions, closures,
// interface boxing — and the pooled/waived shapes that are fine.
package hotalloc

var sink any

// AppendHot appends into the caller's buffer: the desired shape.
//
//bess:hotpath
func AppendHot(dst []byte, b byte) []byte {
	return append(dst, b)
}

// Encode allocates a fresh output per call.
//
//bess:hotpath
func Encode(src []byte) []byte {
	out := make([]byte, len(src)) // want hotalloc
	copy(out, src)
	return out
}

// Clone uses the nil-base append idiom: one allocation per call.
//
//bess:hotpath
func Clone(src []byte) []byte {
	return append([]byte(nil), src...) // want hotalloc
}

// Key converts bytes to string: a copy per call.
//
//bess:hotpath
func Key(b []byte) string {
	return string(b) // want hotalloc
}

// Fresh news up a value per call.
//
//bess:hotpath
func Fresh() *int {
	return new(int) // want hotalloc
}

// Box passes a concrete value to an interface parameter.
//
//bess:hotpath
func Box(v int) {
	take(v) // want hotalloc
}

func take(v any) { sink = v }

// Closure allocates the literal and its captures per call.
//
//bess:hotpath
func Closure(n int) func() int {
	return func() int { return n } // want hotalloc
}

// Waived owns its allocation deliberately: the decode result escapes to
// the caller by contract.
//
//bess:hotpath
func Waived(src []byte) []byte {
	out := make([]byte, len(src)) //bess:hotpath ignore=decode result is handed to the caller and must own its bytes
	copy(out, src)
	return out
}

// Cold is unmarked: allocations are nobody's business here.
func Cold(src []byte) []byte {
	return append([]byte(nil), src...)
}
