// Package durab reproduces the durability bugs bess-vet was built to
// catch: the unchecked Sync/Close sites that shipped in internal/area and
// cmd/ before the analyzer existed.
package durab

import "os"

// WriteMeta mirrors the pre-fix area.CreateFile cleanup path (Close error
// vanished) and an unchecked Sync before a checked Close.
func WriteMeta(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // want durability
		return err
	}
	f.Sync() // want durability
	return f.Close()
}

// DeferDrop mirrors the pre-fix cmd/bess-server shutdown: a bare deferred
// Close whose error nobody sees.
func DeferDrop(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want durability
	_, err = f.Write([]byte("x"))
	return err
}

// Shadowed overwrites the Sync error before anything reads it.
func Shadowed(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = f.Sync() // want durability
	err = f.Close()
	return err
}

// ExplicitDiscard is the permitted form: a visible decision, not a bug.
func ExplicitDiscard(f *os.File) {
	_ = f.Close()
}

// Checked is the good path: every result handled.
func Checked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
