// Package poollife reproduces pooled-buffer lifecycle bugs: releases missing
// on error paths, double releases, use-after-release, and escapes that put a
// recycled buffer beyond the pool's sight.
//
//bess:resource acquire=getBuf release=putBuf sink=Writer.pending
package poollife

import (
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getBuf() *[]byte { return pool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	*bp = (*bp)[:0]
	pool.Put(bp)
}

// Writer coalesces frames into a pooled buffer; pending is the declared
// sink, stash is not.
type Writer struct {
	pending []byte
	stash   *[]byte
	out     chan *[]byte
}

func (w *Writer) write(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty")
	}
	return nil
}

// SendOK releases on the single exit path.
func (w *Writer) SendOK(msg []byte) error {
	bp := getBuf()
	*bp = append((*bp)[:0], msg...)
	err := w.write(*bp)
	putBuf(bp)
	return err
}

// LeakOnError skips the release on the failure path.
func (w *Writer) LeakOnError(msg []byte) error {
	bp := getBuf()
	*bp = append((*bp)[:0], msg...)
	if err := w.write(*bp); err != nil {
		return err // want poollife
	}
	putBuf(bp)
	return nil
}

// DoubleFree releases the same buffer twice.
func DoubleFree() {
	bp := getBuf()
	putBuf(bp)
	putBuf(bp) // want poollife
}

// UseAfterFree reads the buffer after handing it back.
func UseAfterFree() byte {
	bp := getBuf()
	*bp = append(*bp, 1)
	putBuf(bp)
	return (*bp)[0] // want poollife
}

// Stash parks the buffer in an undeclared field: the pool loses it.
func (w *Writer) Stash() {
	bp := getBuf()
	w.stash = bp // want poollife
}

// SinkOK hands the buffer to the declared sink field.
func (w *Writer) SinkOK() {
	if w.pending == nil {
		bp := getBuf()
		w.pending = *bp
	}
	w.pending = append(w.pending, 0)
}

// SendChan pushes the buffer into a channel: another goroutine now owns it.
func (w *Writer) SendChan() {
	bp := getBuf()
	w.out <- bp // want poollife
}

// HalfRelease frees on only one branch reaching the merge.
func HalfRelease(ok bool) {
	bp := getBuf()
	if ok {
		putBuf(bp)
	} // want poollife
}

// DeferOK covers every exit with a deferred release.
func DeferOK(msg []byte) error {
	bp := getBuf()
	defer putBuf(bp)
	*bp = append((*bp)[:0], msg...)
	if len(*bp) == 0 {
		return errors.New("empty")
	}
	return nil
}

// newBuf is an acquire wrapper: its caller owns the result.
func newBuf() *[]byte { return getBuf() }

// recycle forwards its parameter to the release: calling it releases.
func recycle(bp *[]byte) { putBuf(bp) }

// WrapperOK acquires and releases through the wrappers.
func WrapperOK() {
	bp := newBuf()
	recycle(bp)
}

// WrapperLeak never releases the wrapped acquisition.
func WrapperLeak() {
	bp := newBuf()
	_ = bp
} // want poollife

// FlushHalf detaches the sink buffer but recycles it only on success.
func (w *Writer) FlushHalf() error {
	buf := w.pending
	w.pending = nil
	if err := w.write(buf); err != nil {
		return err // want poollife
	}
	putBuf(&buf)
	return nil
}

// Pin-style pair: the acquire returns an index, and pins may legitimately
// outlive the acquiring function — only double-release and use-after-release
// are bugs.
//
//bess:resource acquire=Pool.Acquire release=Pool.Unpin mode=pinned
type Pool struct{ pins map[int]int }

func (p *Pool) Acquire(id int) (int, error) {
	p.pins[id]++
	return id, nil
}

func (p *Pool) Unpin(slot int) error {
	p.pins[slot]--
	return nil
}

// PinOK pins, covers the exit with a deferred unpin.
func PinOK(p *Pool) error {
	slot, err := p.Acquire(1)
	if err != nil {
		return err
	}
	defer p.Unpin(slot)
	return nil
}

// PinEscapeOK returns the pinned slot to the caller: pins may outlive us.
func PinEscapeOK(p *Pool) (int, error) {
	return p.Acquire(2)
}

// PinDouble unpins the same slot twice.
func PinDouble(p *Pool) {
	slot, _ := p.Acquire(1)
	_ = p.Unpin(slot)
	_ = p.Unpin(slot) // want poollife
}

// PinUseAfter uses the slot index after unpinning it.
func PinUseAfter(p *Pool) int {
	slot, _ := p.Acquire(1)
	_ = p.Unpin(slot)
	return slot // want poollife
}

// Mapping pair keyed by the release argument: the acquire returns only an
// error, so the analyzer tracks Unmap calls by their address expression.
//
//bess:resource acquire=Space.Map release=Space.Unmap mode=pinned
type Space struct{ maps map[uint64]bool }

func (s *Space) Map(addr uint64) error {
	s.maps[addr] = true
	return nil
}

func (s *Space) Unmap(addr uint64) error {
	delete(s.maps, addr)
	return nil
}

// DoubleUnmap releases the same address twice on one path.
func DoubleUnmap(s *Space, addr uint64) {
	_ = s.Map(addr)
	_ = s.Unmap(addr)
	_ = s.Unmap(addr) // want poollife
}

// UnmapBranchOK unmaps once on every path; the branch releases do not
// combine into a false double-release.
func UnmapBranchOK(s *Space, addr uint64, fail bool) error {
	_ = s.Map(addr)
	if fail {
		_ = s.Unmap(addr)
		return errors.New("fail")
	}
	return s.Unmap(addr)
}
