// Package crcpath reproduces verified-read-path shapes: fetch functions
// that honor their //bess:verified contract by calling a Verify* checksum
// function, and the regression the analyzer exists for — a read path that
// hands out image bytes without ever verifying them.
package crcpath

import "errors"

type segImage struct{ data []byte }

// VerifyData checks the data section against its recorded checksum.
func (s *segImage) VerifyData(b []byte) error {
	if len(b) != len(s.data) {
		return errors.New("checksum mismatch")
	}
	return nil
}

// Verify is the package-level verifier (page.Verify shape).
func Verify(b []byte, crc uint32) error {
	if len(b) == 0 {
		return errors.New("checksum mismatch")
	}
	return nil
}

// ReadVerified verifies through a method call: the desired shape.
//
//bess:verified
func ReadVerified(s *segImage) ([]byte, error) {
	if err := s.VerifyData(s.data); err != nil {
		return nil, err
	}
	return s.data, nil
}

// ReadPageVerified verifies through the package-level helper.
//
//bess:verified
func ReadPageVerified(s *segImage, crc uint32) ([]byte, error) {
	if err := Verify(s.data, crc); err != nil {
		return nil, err
	}
	return s.data, nil
}

// ReadRetryVerified verifies inside a retry closure; the call still counts.
//
//bess:verified
func ReadRetryVerified(s *segImage, crc uint32) ([]byte, error) {
	attempt := func() error { return Verify(s.data, crc) }
	if err := attempt(); err != nil {
		if err := attempt(); err != nil {
			return nil, err
		}
	}
	return s.data, nil
}

// ReadUnverified promises verification and never does it.
//
//bess:verified
func ReadUnverified(s *segImage) ([]byte, error) { // want crcpath
	return s.data, nil
}
