// Package lockorder reproduces hierarchy violations against a declared
// lock order, including one only visible through the call graph.
//
//bess:lockorder Reg.tableMu < Reg.copyMu < Journal.mu
package lockorder

import "sync"

// Journal is the innermost lock holder (like wal.Log).
type Journal struct {
	mu sync.Mutex
	n  int
}

// Append takes the journal lock.
func (j *Journal) Append() {
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
}

// Reg mirrors the server's striped registry locks.
type Reg struct {
	tableMu sync.Mutex
	copyMu  sync.Mutex
	j       Journal
}

// InOrder nests along the declared direction: fine.
func (r *Reg) InOrder() {
	r.tableMu.Lock()
	r.copyMu.Lock()
	r.j.Append()
	r.copyMu.Unlock()
	r.tableMu.Unlock()
}

// Inverted acquires the outer lock while holding the inner one.
func (r *Reg) Inverted() {
	r.copyMu.Lock()
	r.tableMu.Lock() // want lockorder
	r.tableMu.Unlock()
	r.copyMu.Unlock()
}

// Recursive deadlocks on itself.
func (r *Reg) Recursive() {
	r.tableMu.Lock()
	r.tableMu.Lock() // want lockorder
	r.tableMu.Unlock()
	r.tableMu.Unlock()
}

// CallsUp holds the innermost lock and calls into a function that takes an
// outer one — the inversion is only visible interprocedurally.
func (r *Reg) CallsUp() {
	r.j.mu.Lock()
	r.lockTable() // want lockorder
	r.j.mu.Unlock()
}

func (r *Reg) lockTable() {
	r.tableMu.Lock()
	r.tableMu.Unlock()
}

// Sequential acquisition (release before the next) is always legal.
func (r *Reg) Sequential() {
	r.copyMu.Lock()
	r.copyMu.Unlock()
	r.tableMu.Lock()
	r.tableMu.Unlock()
}
