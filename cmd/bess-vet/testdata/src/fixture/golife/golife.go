// Package golifefix exercises the goroutine-lifecycle analyzer: spawns
// with no provable stop path are flagged; done channels, stop flags,
// WaitGroup joins, error-break loops, and explicit waivers are accepted.
//
//bess:golife
package golifefix

import (
	"io"
	"sync"
	"sync/atomic"

	"fixture/golife/goleak"
)

var sink int

func work() { sink++ }

// --- dispatch shape: fire-and-forget goroutines with no teardown ---

type peer struct{ n int }

func (p *peer) handle(i int) { sink = i + p.n }

func (p *peer) serve() {
	for i := 0; i < 4; i++ {
		go p.handle(i) // want golife
	}
}

// --- WaitGroup join: Add before, Done inside, Wait on the spawner ---

func fanout(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// --- done channel closed by an exported Close ---

type ticker struct{ done chan struct{} }

func (t *ticker) start() {
	go func() {
		for {
			select {
			case <-t.done:
				return
			default:
			}
			work()
		}
	}()
}

// Close stops the ticker goroutine.
func (t *ticker) Close() { close(t.done) }

// --- done channel nobody ever closes ---

type orphan struct{ done chan struct{} }

func (o *orphan) start() {
	go func() { // want golife
		<-o.done
	}()
}

// --- stop flag: atomic.Bool set by an exported Stop ---

type pump struct{ stop atomic.Bool }

func (p *pump) start() {
	go func() {
		for {
			if p.stop.Load() {
				return
			}
			work()
		}
	}()
}

// Stop halts the pump goroutine.
func (p *pump) Stop() { p.stop.Store(true) }

// --- stop flag read through a predicate method ---

type cursor struct {
	mu        sync.Mutex
	cancelled bool // written under mu
}

func (c *cursor) isCancelled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// Cancel stops the cursor goroutine.
func (c *cursor) Cancel() {
	c.mu.Lock()
	c.cancelled = true
	c.mu.Unlock()
}

func (c *cursor) run() {
	go func() {
		for {
			if c.isCancelled() {
				return
			}
			work()
		}
	}()
}

// --- stop flag whose only setter is dead code ---

type stale struct{ quit bool }

func (s *stale) start() {
	go func() { // want golife
		for {
			if s.quit {
				return
			}
			work()
		}
	}()
}

func (s *stale) neverCalled() { s.quit = true }

// --- error-break loop over a closable source (the read-loop shape) ---

type reader struct{ src io.ReadCloser }

func (r *reader) start() {
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := r.src.Read(buf); err != nil {
				return
			}
		}
	}()
}

// Close stops the read loop by killing its source.
func (r *reader) Close() { _ = r.src.Close() }

// --- goleak.Go spawns: method values and wrappers expand like go stmts ---

type worker struct{ done chan struct{} }

func (w *worker) start() {
	goleak.Go("w.run", w.run)
}

func (w *worker) run() { <-w.done }

// Close stops the tracked worker.
func (w *worker) Close() { close(w.done) }

func (w *worker) spin() {
	for {
		work()
	}
}

func (w *worker) startLeak() {
	goleak.Go("w.leak", func() { // want golife
		w.spin()
	})
}

// --- joiner: a drain helper that Waits on a group others Done ---

type pool struct{ wg sync.WaitGroup }

func (p *pool) spawn() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

// DrainAsync closes done once every spawned worker has finished.
func (p *pool) DrainAsync(done chan struct{}) {
	go func() {
		p.wg.Wait()
		close(done)
	}()
}

// --- waivers: an explicit reason silences the finding, an empty one is
// itself flagged ---

func spinForever() {
	for {
		work()
	}
}

func daemon() {
	go spinForever() //bess:golife ignore=fixture daemon runs for the process lifetime
}

func daemonBad() {
	//bess:golife ignore=
	go spinForever() // want golife
}
