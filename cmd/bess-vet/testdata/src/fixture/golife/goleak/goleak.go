// Package goleak is a fixture stand-in for bess/internal/goleak: golife
// recognizes Go(name, fn) by package name and expands the spawned fn.
package goleak

// Go runs fn on a new goroutine.
func Go(name string, fn func()) {
	go fn()
}
