// Package walorder reproduces write-ahead-ordering violations: page
// stores before their covering log record, mutations without a pre-update
// capture, and non-monotone LSN chains.
//
//bess:walorder
//bess:walsink Pager.WritePage
//bess:walsink Cache.StorePage
//bess:walorder capture=Store.Stage mutate=DB.apply
package walorder

// LSN mirrors page.LSN.
type LSN uint64

// Record is a miniature WAL record.
type Record struct {
	Tx      uint64
	PrevLSN LSN
}

// Log mirrors wal.Log: Append assigns the next LSN.
type Log struct{ next LSN }

// Append appends one record.
func (l *Log) Append(r *Record) LSN {
	l.next++
	return l.next
}

// Pager mirrors wal.Pager: the page-store sink interface.
type Pager interface {
	WritePage(p int, b []byte)
}

// Cache is a concrete sink (a dirty frame store).
type Cache struct{ n int }

// StorePage stores one page image.
func (c *Cache) StorePage(p int, b []byte) { c.n++ }

// Store mirrors the version store: Stage captures the pre-update image.
type Store struct{ staged int }

// Stage records an in-flight overwrite.
func (s *Store) Stage(p int) { s.staged++ }

// DB ties the pieces together.
type DB struct {
	log *Log
	c   Cache
	st  Store
	pg  Pager
}

// LogThenWrite follows the rule: append first, then store.
func (d *DB) LogThenWrite(p int, img []byte) {
	d.log.Append(&Record{Tx: 1})
	d.c.StorePage(p, img)
}

// WriteThenLog breaks log-before-data: the store races a crash window
// where the page is dirty and the log has no record.
func (d *DB) WriteThenLog(p int, img []byte) {
	d.c.StorePage(p, img) // want walorder
	d.log.Append(&Record{Tx: 1})
}

// logUpdate is the interprocedural append: callers inherit its effect.
func (d *DB) logUpdate(tx uint64) LSN {
	return d.log.Append(&Record{Tx: tx})
}

// ViaHelper appends through a helper before storing: fine.
func (d *DB) ViaHelper(p int, img []byte) {
	d.logUpdate(7)
	d.c.StorePage(p, img)
}

// LoopBody keeps the append ahead of the store inside a loop: fine.
func (d *DB) LoopBody(pages []int, img []byte) {
	for _, p := range pages {
		d.logUpdate(8)
		d.c.StorePage(p, img)
	}
}

// InterfaceSink stores through the Pager interface with no record.
func (d *DB) InterfaceSink(p int, img []byte) {
	d.pg.WritePage(p, img) // want walorder
}

// Replay re-applies an already-logged record; the waiver names why.
func (d *DB) Replay(p int, img []byte) {
	//bess:walorder ignore=redo replay re-applies a record already in the log
	d.pg.WritePage(p, img)
}

// apply is the declared mutate side of the capture pair.
func (d *DB) apply(p int, img []byte) {
	d.logUpdate(9)
	d.c.StorePage(p, img)
}

// StagedUpdate captures before mutating: fine.
func (d *DB) StagedUpdate(p int, img []byte) {
	d.st.Stage(p)
	d.apply(p, img)
}

// UnstagedUpdate mutates without the capture: an open snapshot could see
// a torn image.
func (d *DB) UnstagedUpdate(p int, img []byte) {
	d.apply(p, img) // want walorder
}

// Chain reassigns the chain head after every append: monotone, fine.
func (d *DB) Chain() {
	prev := d.log.Append(&Record{Tx: 2})
	prev = d.log.Append(&Record{Tx: 2, PrevLSN: prev})
	d.log.Append(&Record{Tx: 2, PrevLSN: prev})
}

// ForkedChain reuses a stale LSN after a newer append: the second record
// vanishes from the per-transaction chain.
func (d *DB) ForkedChain() {
	prev := d.log.Append(&Record{Tx: 3})
	d.log.Append(&Record{Tx: 3, PrevLSN: prev})
	d.log.Append(&Record{Tx: 3, PrevLSN: prev}) // want walorder
}
