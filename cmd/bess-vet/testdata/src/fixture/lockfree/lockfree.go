// Package lockfree reproduces lock acquisitions reachable from declared
// lock-free roots: direct, interprocedural, through a lock manager, and
// the waiver forms that prune the walk.
package lockfree

import "sync"

// Manager mirrors the 2PL lock manager.
type Manager struct{ n int }

// Acquire takes a transaction-visible lock.
func (m *Manager) Acquire(id int) { m.n++ }

// DB holds the locks the roots must never reach.
type DB struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	lm  Manager
	reg map[int]int
}

// SnapRead is a snapshot read root: everything it reaches must be
// lock-free.
//
//bess:lockfree
func (d *DB) SnapRead(id int) int {
	d.resolve(id)
	return d.chainScan(id)
}

// resolve is only called from the root; its lock is a finding.
func (d *DB) resolve(id int) {
	d.mu.Lock() // want lockfree
	d.reg[id]++
	d.mu.Unlock()
}

// chainScan read-locks: RLock still blocks behind a writer.
func (d *DB) chainScan(id int) int {
	d.rw.RLock() // want lockfree
	defer d.rw.RUnlock()
	return d.reg[id]
}

// SnapLocked reaches the lock manager directly.
//
//bess:lockfree
func (d *DB) SnapLocked(id int) {
	d.lm.Acquire(id) // want lockfree
}

// SnapMixed shares a helper with the pull path: the pull call is waived
// (pruning the walk into pullFetch) and the registry's short critical
// section is waived at the lock itself.
//
//bess:lockfree
func (d *DB) SnapMixed(id int) {
	d.pullFetch(id) //bess:lockfree ignore=pull branch serves non-snapshot scans and may lock
	d.registry(id)
}

// pullFetch locks, but is only reached through the waived call.
func (d *DB) pullFetch(id int) {
	d.mu.Lock()
	d.reg[id]++
	d.mu.Unlock()
}

// registry waives its own critical section with a reason.
func (d *DB) registry(id int) {
	//bess:lockfree ignore=short in-memory copy window, never a transaction lock
	d.mu.Lock()
	d.reg[id]++
	d.mu.Unlock()
}

// Update is never reached from a root: its locks are fine.
func (d *DB) Update(id int) {
	d.mu.Lock()
	d.lm.Acquire(id)
	d.reg[id]++
	d.mu.Unlock()
}
