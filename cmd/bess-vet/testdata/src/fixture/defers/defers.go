// Package defers reproduces unlock-pairing bugs: locks that escape the
// function on some exit path.
package defers

import (
	"errors"
	"sync"
)

// T carries one plain and one reader/writer lock.
type T struct {
	mu sync.Mutex
	rw sync.RWMutex
	v  int
}

// OK releases via defer on every path.
func (t *T) OK() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v
}

// BranchOK releases explicitly on both paths.
func (t *T) BranchOK(c bool) int {
	t.mu.Lock()
	if c {
		t.mu.Unlock()
		return 0
	}
	t.mu.Unlock()
	return t.v
}

// LeakOnError returns with the lock still held on the failure path.
func (t *T) LeakOnError(fail bool) error {
	t.mu.Lock()
	if fail {
		return errors.New("boom") // want defers
	}
	t.mu.Unlock()
	return nil
}

// RLeak holds the read lock past one return.
func (t *T) RLeak(c bool) int {
	t.rw.RLock()
	if c {
		return t.v // want defers
	}
	t.rw.RUnlock()
	return 0
}

// TryLeak never releases the TryLock success arm.
func (t *T) TryLeak() {
	if t.mu.TryLock() {
		t.v++
	} // want defers
}

// TryOK is the idiomatic guarded-skip shape.
func (t *T) TryOK() bool {
	if !t.mu.TryLock() {
		return false
	}
	defer t.mu.Unlock()
	t.v++
	return true
}
