// Package codecsym reproduces wire-format asymmetries between hand-written
// Append*/Decode* codec pairs.
//
//bess:codecsym
package codecsym

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var errBad = errors.New("bad encoding")

// AppendPoint/DecodePoint agree: two big-endian words.
func AppendPoint(b []byte, x, y uint32) []byte {
	b = binary.BigEndian.AppendUint32(b, x)
	return binary.BigEndian.AppendUint32(b, y)
}

func DecodePoint(b []byte) (x, y uint32, err error) {
	if len(b) < 8 {
		return 0, 0, errBad
	}
	x = binary.BigEndian.Uint32(b[0:4])
	y = binary.BigEndian.Uint32(b[4:8])
	return x, y, nil
}

// AppendTag writes a 32-bit tag.
func AppendTag(b []byte, tag uint32) []byte {
	return binary.BigEndian.AppendUint32(b, tag)
}

// DecodeTag reads a narrower field than AppendTag wrote.
func DecodeTag(b []byte) (uint16, error) { // want codecsym
	if len(b) < 2 {
		return 0, errBad
	}
	return binary.BigEndian.Uint16(b[0:2]), nil
}

// AppendHdr writes three half-words.
func AppendHdr(b []byte, a, mid, z uint16) []byte {
	b = binary.BigEndian.AppendUint16(b, a)
	b = binary.BigEndian.AppendUint16(b, mid)
	return binary.BigEndian.AppendUint16(b, z)
}

// DecodeHdr misses the third field.
func DecodeHdr(b []byte) (uint16, uint16, error) { // want codecsym
	if len(b) < 6 {
		return 0, 0, errBad
	}
	return binary.BigEndian.Uint16(b[0:2]), binary.BigEndian.Uint16(b[2:4]), nil
}

// AppendMix writes the word, then the flag byte.
func AppendMix(b []byte, n uint32, flag byte) []byte {
	b = binary.BigEndian.AppendUint32(b, n)
	return append(b, flag)
}

// DecodeMix reads the byte before the word.
func DecodeMix(b []byte) (uint32, byte, error) { // want codecsym
	if len(b) < 5 {
		return 0, 0, errBad
	}
	flag := b[0]
	n := binary.BigEndian.Uint32(b[1:5])
	return n, flag, nil
}

// AppendOrphan has no decoder: the wire format cannot be read back.
func AppendOrphan(b []byte, v uint64) []byte { // want codecsym
	return binary.BigEndian.AppendUint64(b, v)
}

// AppendFlag/DecodeFlag agree on both branches; the decoder's double read
// of b[0] (validate, then convert) is one wire field, not two.
func AppendFlag(b []byte, on bool) []byte {
	if on {
		return append(b, 1)
	}
	return append(b, 0)
}

func DecodeFlag(b []byte) (bool, error) {
	if len(b) != 1 || b[0] > 1 {
		return false, errBad
	}
	return b[0] == 1, nil
}

// appendSec/decodeSec: the length-prefixed section helpers.
func appendSec(b, sec []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(sec)))
	return append(b, sec...)
}

func decodeSec(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errBad
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	rest := b[4:]
	if n > len(rest) {
		return nil, nil, errBad
	}
	return rest[:n], rest[n:], nil
}

// AppendList/DecodeList agree through delegation and a dynamic repeat: a
// count followed by that many sections.
func AppendList(b []byte, items [][]byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(items)))
	for _, it := range items {
		b = appendSec(b, it)
	}
	return b
}

func DecodeList(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, errBad
	}
	n := binary.BigEndian.Uint32(b[0:4])
	rest := b[4:]
	items := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		var sec []byte
		var err error
		sec, rest, err = decodeSec(rest)
		if err != nil {
			return nil, err
		}
		items = append(items, sec)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errBad, len(rest))
	}
	return items, nil
}
