// Package guarded reproduces the annotated-field bugs: the registry shape
// of server.Server with accesses that skip the mutex or write under RLock.
package guarded

import "sync"

// Server mirrors the bess server's registry locking.
type Server struct {
	mu      sync.RWMutex
	areas   map[uint32]int    // guarded by mu
	clients map[uint32]string // guarded by mu
}

// New exercises the constructor exemption: the value is not published yet.
func New() *Server {
	s := &Server{areas: map[uint32]int{}, clients: map[uint32]string{}}
	s.areas[0] = 1
	return s
}

// LookupOK holds the read lock.
func (s *Server) LookupOK(id uint32) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.areas[id]
}

// LookupBad reads the table with no lock at all.
func (s *Server) LookupBad(id uint32) int {
	return s.areas[id] // want guarded
}

// AddUnderRLock mutates under the shared lock.
func (s *Server) AddUnderRLock(id uint32, v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.areas[id] = v // want guarded
}

// RegisterBad writes the client registry with no lock.
func (s *Server) RegisterBad(id uint32, name string) {
	s.clients[id] = name // want guarded
}

// DeleteOK holds the write lock across a map delete.
func (s *Server) DeleteOK(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.areas, id)
}
