// Package directive holds deliberately broken //bess: lines. A typo'd or
// malformed directive silently disables the checking it meant to enable,
// so each one must be a finding in its own right.
package directive

// The verb is misspelled: the hierarchy below would never be enforced.
//
//bess:lockorde Reg.mu < Reg.copyMu // want directive

// The resource pair is incomplete (release= missing) and the acquire
// function does not exist; either way, checking would vanish.
//
//bess:resource acquire=get // want directive

// golife's only argument form is ignore=<reason>.
//
//bess:golife ignore // want directive

// codecsym takes no argument.
//
//bess:codecsym extra // want directive

// A walsink must name a Type.Method.
//
//bess:walsink NoDotHere // want directive

// A capture pair needs both sides.
//
//bess:walorder capture=Store.Stage mutate= // want directive

// An ignore waiver without a reason is worthless in review.
//
//bess:lockfree ignore= // want directive

// prepublish takes no argument.
//
//bess:prepublish soon // want directive

// Unknown verb outright.
//
//bess:lockfrees // want directive

// Reg exists so the (never-registered) lock classes above name something.
type Reg struct{ mu, copyMu int }
