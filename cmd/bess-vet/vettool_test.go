package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The vet tool protocol (vettool.go) is driven by the go command in real
// use; these tests exercise the unit entry points in-process with hand-built
// configs against the fixture module.

func fixtureUnitConfig(t *testing.T, dir string) (*vetConfig, string) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", "fixture", dir))
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(abs, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files under %s", abs)
	}
	return &vetConfig{
		ID:         "fixture/" + dir,
		Dir:        abs,
		ImportPath: "fixture/" + dir,
		GoFiles:    files,
		VetxOutput: filepath.Join(t.TempDir(), "unit.vetx"),
	}, abs
}

func writeUnitConfig(t *testing.T, cfg *vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVettoolFindingsUnitScoped: the per-unit analysis must surface the
// fixture's intended findings and only for files inside the unit.
func TestVettoolFindingsUnitScoped(t *testing.T) {
	cfg, abs := fixtureUnitConfig(t, "walorder")
	findings, err := vettoolFindings(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("vettoolFindings returned no findings for the walorder fixture")
	}
	sawWalorder := false
	for _, f := range findings {
		if !strings.HasPrefix(filepath.Clean(f.pos.Filename), abs) {
			t.Errorf("finding outside the unit: %s", f.pos.Filename)
		}
		if f.analyzer == "walorder" {
			sawWalorder = true
		}
	}
	if !sawWalorder {
		t.Error("no walorder finding in the walorder unit")
	}
}

// TestVettoolUnitExitCodes: a findings unit exits 1 and always writes the
// facts file; a VetxOnly (dependency) unit exits 0 without analyzing.
func TestVettoolUnitExitCodes(t *testing.T) {
	cfg, _ := fixtureUnitConfig(t, "lockfree")
	if code := vettoolUnit(writeUnitConfig(t, cfg)); code != 1 {
		t.Fatalf("findings unit exited %d, want 1", code)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}

	dep, _ := fixtureUnitConfig(t, "hotalloc")
	dep.VetxOnly = true
	if code := vettoolUnit(writeUnitConfig(t, dep)); code != 0 {
		t.Fatalf("VetxOnly unit exited %d, want 0", code)
	}
	if _, err := os.Stat(dep.VetxOutput); err != nil {
		t.Fatalf("VetxOnly facts file not written: %v", err)
	}
}

// TestVettoolOutsideModule: a unit outside any module (std-style) yields no
// findings and no error — the driver feeds bess-vet every package.
func TestVettoolOutsideModule(t *testing.T) {
	dir := t.TempDir() // no go.mod anywhere above t.TempDir on CI runners
	findings, err := vettoolFindings(&vetConfig{Dir: dir, ImportPath: "os"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("got %d findings for a package outside the module", len(findings))
	}
}

// TestRunVettoolDispatch: only vet-protocol argument shapes are intercepted.
func TestRunVettoolDispatch(t *testing.T) {
	if runVettool([]string{"./..."}) {
		t.Error("plain package pattern must not be treated as a vet invocation")
	}
	if runVettool([]string{"-json", "./internal/..."}) {
		t.Error("standalone flags must not be treated as a vet invocation")
	}
}
