package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkg is one loaded, type-checked package of the module under analysis.
type pkg struct {
	path    string // import path ("bess/internal/wal")
	dir     string
	files   []*ast.File
	fset    *token.FileSet
	tpkg    *types.Package
	info    *types.Info
	isTest  bool // _test.go files of some package (analyzed but findings demoted)
	imports []string
}

// loader parses and type-checks the module's packages in dependency order.
// Standard-library imports resolve through the source importer; module
// packages resolve against the loader's own result map, so no build cache
// or external toolchain invocation is needed.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*pkg // by import path
}

func newLoader(modRoot, modPath string) *loader {
	// The source importer must not see cgo parts: analysis always targets
	// the pure-Go build, which every package here supports.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    make(map[string]*pkg),
	}
	l.std = importer.ForCompiler(fset, "source", nil)
	return l
}

// Import implements types.Importer: module packages come from the loader,
// everything else from the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if strings.HasPrefix(path, l.modPath+"/") || path == l.modPath {
		p, ok := l.pkgs[path]
		if !ok || p.tpkg == nil {
			return nil, fmt.Errorf("module package %s not loaded yet (cycle?)", path)
		}
		return p.tpkg, nil
	}
	return l.std.Import(path)
}

// buildTags reports whether the file's build constraints accept the
// analysis configuration: default tags with lockcheck, goleak, and
// walcheck OFF (bess-vet checks the production build; the tag-on files
// mirror plain sync, go-statement, and page-write usage).
func buildTagsOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case "lockcheck", "goleak", "walcheck":
					return false
				case "linux", "unix", build.Default.GOOS, build.Default.GOARCH:
					return true
				case "go1.22", "go1.21", "go1.20", "go1.19", "go1.18":
					return true
				}
				return false
			})
		}
	}
	return true
}

// discover walks the module for directories matching the ./... patterns and
// returns their import paths.
func (l *loader) discover(patterns []string) ([]string, error) {
	roots := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "/...")
		pat = strings.TrimPrefix(pat, "./")
		if pat == "." || pat == "" {
			roots[l.modRoot] = true
		} else {
			roots[filepath.Join(l.modRoot, pat)] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	for root := range roots {
		err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !fi.IsDir() {
				return nil
			}
			name := fi.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			hasGo := false
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					hasGo = true
					break
				}
			}
			if !hasGo {
				return nil
			}
			rel, err := filepath.Rel(l.modRoot, path)
			if err != nil {
				return err
			}
			ip := l.modPath
			if rel != "." {
				ip = l.modPath + "/" + filepath.ToSlash(rel)
			}
			if !seen[ip] {
				seen[ip] = true
				out = append(out, ip)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// parseDir parses one package directory (including its _test.go files).
func (l *loader) parseDir(importPath string) (*pkg, error) {
	dir := l.modRoot
	if importPath != l.modPath {
		dir = filepath.Join(l.modRoot, strings.TrimPrefix(importPath, l.modPath+"/"))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &pkg{path: importPath, dir: dir, fset: l.fset}
	importSet := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildTagsOK(f) {
			continue
		}
		// External test packages (package foo_test) get their own pseudo
		// package; for simplicity they are type-checked together only when
		// the package name matches. foo_test files are skipped: the
		// invariants under check live in the non-test build.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	for ip := range importSet {
		p.imports = append(p.imports, ip)
	}
	sort.Strings(p.imports)
	return p, nil
}

// load parses, topologically sorts, and type-checks every package matched
// by patterns. Returns packages in dependency order.
func (l *loader) load(patterns []string) ([]*pkg, error) {
	paths, err := l.discover(patterns)
	if err != nil {
		return nil, err
	}
	parsed := map[string]*pkg{}
	var order []string
	// Parse the matched set plus any module-internal dependencies that the
	// patterns missed (types must resolve either way).
	queue := append([]string(nil), paths...)
	for len(queue) > 0 {
		ip := queue[0]
		queue = queue[1:]
		if _, done := parsed[ip]; done {
			continue
		}
		p, err := l.parseDir(ip)
		if err != nil {
			return nil, err
		}
		parsed[ip] = p // may be nil (no Go files): recorded to stop revisits
		if p == nil {
			continue
		}
		order = append(order, ip)
		for _, dep := range p.imports {
			if strings.HasPrefix(dep, l.modPath+"/") || dep == l.modPath {
				queue = append(queue, dep)
			}
		}
	}
	// Topological sort by module-internal imports.
	sorted := topoSort(order, func(ip string) []string {
		var deps []string
		if p := parsed[ip]; p != nil {
			for _, d := range p.imports {
				if parsed[d] != nil {
					deps = append(deps, d)
				}
			}
		}
		return deps
	})
	var out []*pkg
	for _, ip := range sorted {
		p := parsed[ip]
		if p == nil {
			continue
		}
		p.info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: l, Error: func(err error) {}}
		tpkg, err := conf.Check(ip, l.fset, p.files, p.info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", ip, err)
		}
		p.tpkg = tpkg
		l.pkgs[ip] = p
		out = append(out, p)
	}
	return out, nil
}

// topoSort orders nodes so dependencies precede dependents.
func topoSort(nodes []string, deps func(string) []string) []string {
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var out []string
	var visit func(string)
	visit = func(n string) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, d := range deps(n) {
			if d != n && state[d] != 1 {
				visit(d)
			}
		}
		state[n] = 2
		out = append(out, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		visit(n)
	}
	return out
}

// findModule locates go.mod upward from dir and returns (root, module path).
func findModule(dir string) (string, string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
