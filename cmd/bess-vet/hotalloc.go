package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotalloc reviews //bess:hotpath functions — frame encode/decode, the hot
// wire codecs, the scan push loop, the prefetch scatter — for per-op heap
// allocations. The flagged shapes:
//
//   - make(...) — a fresh slice/map/channel per call; use the pooled
//     buffers (rpc's getBuf/putBuf, the scan batch pool) or append into a
//     caller-provided buffer instead.
//   - append([]T(nil), ...) — the clone idiom allocates every call.
//   - string <-> []byte conversions — each direction copies.
//   - new(T) and function literals — the value (or the closure's captured
//     variables) escapes per op.
//   - interface boxing — a concrete value passed to an interface parameter
//     allocates; fmt/errors callees are exempt (error paths are cold).
//
// The analyzer has no escape analysis: an allocation the caller must own
// (a decode result handed to the cache) is legitimate and carries a
// //bess:hotpath ignore=<reason> waiver. The AllocsPerRun regression tests
// pin the budgets the fixes established.
type hotallocAnalysis struct {
	dirs *directives
	r    *reporter
	fset *token.FileSet
	seen map[string]bool
}

func analyzeHotAlloc(pkgs []*pkg, dirs *directives, r *reporter) {
	if len(dirs.hotpath) == 0 {
		return
	}
	a := &hotallocAnalysis{dirs: dirs, r: r, seen: make(map[string]bool)}
	for _, p := range pkgs {
		a.fset = p.fset
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.info.Defs[fd.Name].(*types.Func)
				if fn == nil || !dirs.hotpath[fn] {
					continue
				}
				a.checkBody(p, fd.Body)
			}
		}
	}
}

func (a *hotallocAnalysis) checkBody(p *pkg, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			a.flag(e.Pos(), "function literal in hot path: the closure and its captured variables allocate per op; hoist it or use a method value")
			return false
		case *ast.CallExpr:
			a.checkCall(p, e)
		}
		return true
	})
}

func (a *hotallocAnalysis) checkCall(p *pkg, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				a.flag(call.Pos(), "make in hot path allocates per op; reuse a pooled or caller-provided buffer")
			case "new":
				a.flag(call.Pos(), "new in hot path allocates per op; reuse a pooled or caller-provided value")
			case "append":
				if len(call.Args) > 0 && isNilBase(p, call.Args[0]) {
					a.flag(call.Pos(), "append to a nil base clones per op; append into a reused buffer instead")
				}
			}
			return
		}
	}
	// Type conversion: string <-> []byte copies.
	if tv, ok := p.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, p.info.TypeOf(call.Args[0])
		if (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src)) {
			a.flag(call.Pos(), "string/[]byte conversion in hot path copies per op; keep one representation end to end")
		}
		return
	}
	// Interface boxing: a concrete argument to an interface parameter.
	sig, _ := p.info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	if callee := calleeOf(p, call); callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "errors":
			return // error construction is the cold branch
		}
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.info.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		a.flag(arg.Pos(), "interface boxing in hot path: concrete value passed to an interface parameter allocates per op")
	}
}

// isNilBase matches the []T(nil) first argument of the clone idiom.
func isNilBase(p *pkg, e ast.Expr) bool {
	ce, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(ce.Args) != 1 {
		return false
	}
	tv, ok := p.info.Types[ce.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	id, ok := ast.Unparen(ce.Args[0]).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (a *hotallocAnalysis) flag(pos token.Pos, msg string) {
	position := a.fset.Position(pos)
	m := a.dirs.hotpathIgnores[position.Filename]
	if m != nil {
		if _, ok := m[position.Line]; ok {
			return
		}
		if _, ok := m[position.Line-1]; ok {
			return
		}
	}
	key := position.Filename + ":" + itoa(position.Line) + ":" + itoa(position.Column)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.r.report(pos, "hotalloc", "%s; or waive with //bess:hotpath ignore=<reason>", msg)
}
