package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// go vet tool protocol (`go vet -vettool=$(which bess-vet) ./...`),
// hand-rolled on the stdlib so the tool stays dependency-free.
//
// The go command drives an external vet tool through three entry points:
//
//   - `tool -V=full`: print a version line ending in a buildID the go
//     command hashes into its cache key.
//   - `tool -flags`: print a JSON description of the tool's flags (bess-vet
//     exposes none to the vet driver).
//   - `tool <unit>.cfg`: analyze the single package the JSON config
//     describes, print findings for its files, and write the (empty) facts
//     file the go command expects at VetxOutput.
//
// Per-unit invocations re-load the package's import closure through the
// source importer, so a whole-tree `go vet -vettool` pass costs more than
// the standalone `bess-vet ./...` mode — the protocol buys editor and
// `go vet` integration, the standalone mode stays the fast path for CI.

// vetConfig mirrors the fields of the go command's vet config that
// bess-vet consumes; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVettool intercepts the vet tool protocol. It returns false when the
// arguments are not a vet-driver invocation (normal CLI use).
func runVettool(args []string) bool {
	if len(args) == 1 {
		switch strings.TrimLeft(args[0], "-") {
		case "V=full":
			printVettoolVersion()
			return true
		case "flags":
			fmt.Println("[]")
			return true
		}
	}
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(vettoolUnit(args[len(args)-1]))
	}
	return false
}

// printVettoolVersion answers -V=full with the unitchecker-shaped version
// line: `name version devel ... buildID=<hash of this executable>`.
func printVettoolVersion() {
	name := "bess-vet"
	if len(os.Args) > 0 {
		name = filepath.Base(os.Args[0])
	}
	buildID := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			buildID = fmt.Sprintf("%02x", sum[:])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, buildID)
}

// vettoolUnit analyzes the one package a vet config describes and returns
// the process exit code.
func vettoolUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bess-vet: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bess-vet: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even when the tool
	// has nothing to record; bess-vet keeps no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "bess-vet: writing %s: %v\n", cfg.VetxOutput, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no findings wanted
	}
	findings, err := vettoolFindings(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "bess-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", f.pos.Filename, f.pos.Line, f.pos.Column, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vettoolFindings runs the full analyzer suite rooted at the unit's module
// and keeps only findings in the unit's own files.
func vettoolFindings(cfg *vetConfig) ([]finding, error) {
	modRoot, _, err := findModule(cfg.Dir)
	if err != nil {
		// A package outside any module (std, GOPATH deps): nothing of ours
		// to check.
		return nil, nil
	}
	rel, err := filepath.Rel(modRoot, cfg.Dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, nil
	}
	pattern := "./" + filepath.ToSlash(rel)
	all, err := run(modRoot, []string{pattern}, "")
	if err != nil {
		return nil, err
	}
	unit := make(map[string]bool, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		unit[filepath.Clean(f)] = true
	}
	var out []finding
	for _, f := range all {
		if unit[filepath.Clean(f.pos.Filename)] {
			out = append(out, f)
		}
	}
	return out, nil
}
