package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// --- chanflow: channel protocol discipline in //bess:golife packages ---
//
// Three checks, all scoped to packages that opted into goroutine lifecycle
// analysis:
//
//   - double-close and send-after-close: a path-sensitive walk of each
//     function tracks definitely-closed channels (branches fork and merge
//     by intersection, loop bodies are walked once, a reassignment makes
//     the channel fresh) and flags a second close or a later send.
//   - blocked-forever sender: a send inside a goroutine literal on a
//     channel made unbuffered in this package, with no select escape (a
//     default or a receive case alongside it), blocks forever once the
//     receiver is gone — the classic leaked-sender shape.
//   - Add-inside-goroutine: sync.WaitGroup.Add called inside the spawned
//     literal races the matching Wait; the Add belongs before the spawn.

func analyzeChanFlow(pkgs []*pkg, dirs *directives, r *reporter) {
	opted := false
	for _, p := range pkgs {
		if dirs.golife[p.path] {
			opted = true
			break
		}
	}
	if !opted {
		return
	}
	for _, p := range pkgs {
		if !dirs.golife[p.path] || p.isTest {
			continue
		}
		c := &chanflow{p: p, r: r, unbuffered: unbufferedChans(p)}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c.walkFresh(fd.Body)
				c.checkGoroutineBodies(fd.Body)
			}
		}
	}
}

type chanflow struct {
	p          *pkg
	r          *reporter
	unbuffered map[types.Object]bool
}

// unbufferedChans records every object (local or struct field) assigned a
// make(chan T) with no capacity in the package.
func unbufferedChans(p *pkg) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(target ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
			return
		}
		if t := p.info.TypeOf(call.Args[0]); t != nil {
			if _, ok := t.Underlying().(*types.Chan); !ok {
				return
			}
		}
		if o := golifeTarget(p, target); o != nil {
			out[o] = true
		}
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if i < len(s.Rhs) {
						record(lhs, s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						record(name, s.Values[i])
					}
				}
			case *ast.CompositeLit:
				st, ok := p.info.TypeOf(s).Underlying().(*types.Struct)
				if !ok {
					return true
				}
				for _, el := range s.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					for i := 0; i < st.NumFields(); i++ {
						if st.Field(i).Name() == key.Name {
							record(key, kv.Value)
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// --- path-sensitive close tracking ---

// closedState maps a channel object to the position of its close on the
// current path.
type closedState map[types.Object]token.Pos

func (s closedState) clone() closedState {
	out := make(closedState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge keeps only channels closed on both paths.
func (s closedState) merge(other closedState) closedState {
	out := make(closedState)
	for k, v := range s {
		if _, ok := other[k]; ok {
			out[k] = v
		}
	}
	return out
}

// walkFresh walks a function (or literal) body with an empty closed set.
func (c *chanflow) walkFresh(body *ast.BlockStmt) {
	c.walkBlock(body, make(closedState))
}

// walkBlock walks stmts sequentially; returns true when the path
// terminates (return, or an unconditional branch).
func (c *chanflow) walkBlock(block *ast.BlockStmt, st closedState) bool {
	for _, stmt := range block.List {
		if c.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (c *chanflow) walkStmt(stmt ast.Stmt, st closedState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, st)
	case *ast.SendStmt:
		c.checkSend(s, st)
		c.walkNestedLits(s)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, st)
		}
		// Reassignment makes the channel a fresh value.
		for _, lhs := range s.Lhs {
			if o := golifeTarget(c.p, lhs); o != nil {
				delete(st, o)
			}
		}
	case *ast.DeferStmt:
		// Deferred closes run at function exit; they do not close the
		// channel for the statements that follow on this path.
		c.walkNestedLits(s)
	case *ast.GoStmt:
		c.walkNestedLits(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.BlockStmt:
		return c.walkBlock(s, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.checkExpr(s.Cond, st)
		thenSt := st.clone()
		thenDead := c.walkBlock(s.Body, thenSt)
		elseSt := st.clone()
		elseDead := false
		if s.Else != nil {
			elseDead = c.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenDead && elseDead:
			return true
		case thenDead:
			adopt(st, elseSt)
		case elseDead:
			adopt(st, thenSt)
		default:
			adopt(st, thenSt.merge(elseSt))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		// The body may run zero times: walk it for reports on a clone and
		// discard the resulting state.
		c.walkBlock(s.Body, st.clone())
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		c.walkBlock(s.Body, st.clone())
	case *ast.SwitchStmt:
		c.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		c.walkCases(s.Body, st)
	case *ast.SelectStmt:
		states := make([]closedState, 0, len(s.Body.List))
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			caseSt := st.clone()
			if send, ok := comm.Comm.(*ast.SendStmt); ok {
				c.checkSend(send, caseSt)
			}
			dead := false
			for _, cs := range comm.Body {
				if c.walkStmt(cs, caseSt) {
					dead = true
					break
				}
			}
			if !dead {
				states = append(states, caseSt)
			}
		}
		if len(states) == 0 && len(s.Body.List) > 0 {
			return true
		}
		mergeAll(st, states)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	}
	return false
}

func (c *chanflow) walkCases(body *ast.BlockStmt, st closedState) {
	var states []closedState
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseSt := st.clone()
		dead := false
		for _, cs := range cc.Body {
			if c.walkStmt(cs, caseSt) {
				dead = true
				break
			}
		}
		if !dead {
			states = append(states, caseSt)
		}
	}
	mergeAll(st, states)
}

func adopt(dst, src closedState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func mergeAll(st closedState, states []closedState) {
	if len(states) == 0 {
		return
	}
	merged := states[0]
	for _, s := range states[1:] {
		merged = merged.merge(s)
	}
	adopt(st, merged)
}

// checkExpr records close(ch) calls and walks nested literals as fresh
// functions.
func (c *chanflow) checkExpr(e ast.Expr, st closedState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.walkFresh(x.Body)
			return false
		case *ast.CallExpr:
			id, ok := ast.Unparen(x.Fun).(*ast.Ident)
			if !ok || id.Name != "close" || len(x.Args) != 1 {
				return true
			}
			o := golifeTarget(c.p, x.Args[0])
			if o == nil {
				return true
			}
			if first, closed := st[o]; closed {
				c.r.report(x.Pos(), "chanflow",
					"double close of %s on this path (already closed at line %d)",
					render(x.Args[0]), c.p.fset.Position(first).Line)
			} else {
				st[o] = x.Pos()
			}
			return false
		}
		return true
	})
}

func (c *chanflow) checkSend(s *ast.SendStmt, st closedState) {
	o := golifeTarget(c.p, s.Chan)
	if o == nil {
		return
	}
	if first, closed := st[o]; closed {
		c.r.report(s.Pos(), "chanflow",
			"send on %s after close on this path (closed at line %d)",
			render(s.Chan), c.p.fset.Position(first).Line)
	}
}

// walkNestedLits walks function literals inside stmt as fresh functions.
func (c *chanflow) walkNestedLits(stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.walkFresh(lit.Body)
			return false
		}
		return true
	})
}

// --- goroutine-literal checks ---

// checkGoroutineBodies applies the blocked-sender and Add-inside-goroutine
// checks to every goroutine literal spawned in root (bare go statements and
// goleak.Go calls).
func (c *chanflow) checkGoroutineBodies(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		var lit *ast.FuncLit
		switch s := n.(type) {
		case *ast.GoStmt:
			lit, _ = ast.Unparen(s.Call.Fun).(*ast.FuncLit)
		case *ast.CallExpr:
			if isGoleakGo(c.p, s) && len(s.Args) == 2 {
				lit, _ = ast.Unparen(s.Args[1]).(*ast.FuncLit)
			}
		}
		if lit != nil {
			c.checkSpawnedLit(lit)
		}
		return true
	})
}

func (c *chanflow) checkSpawnedLit(lit *ast.FuncLit) {
	// Sends that sit in a select alongside an escape (default or a receive
	// case) cannot block forever.
	escaped := make(map[*ast.SendStmt]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasEscape := false
		var sends []*ast.SendStmt
		for _, cl := range sel.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			switch s := comm.Comm.(type) {
			case nil:
				hasEscape = true // default case
			case *ast.SendStmt:
				sends = append(sends, s)
			default:
				hasEscape = true // a receive case
			}
		}
		if hasEscape {
			for _, s := range sends {
				escaped[s] = true
			}
		}
		return true
	})

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			if escaped[s] {
				return true
			}
			if o := golifeTarget(c.p, s.Chan); o != nil && c.unbuffered[o] {
				c.r.report(s.Pos(), "chanflow",
					"unbuffered send on %s from a goroutine with no select escape: the sender blocks forever once the receiver is gone",
					render(s.Chan))
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			if isNamedType(c.p.info.TypeOf(sel.X), "sync", "WaitGroup") {
				c.r.report(s.Pos(), "chanflow",
					"WaitGroup.Add inside the spawned goroutine races the matching Wait; Add before the go statement")
			}
		}
		return true
	})
}
