package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// --- golife: every goroutine in a //bess:golife package has a stop path ---
//
// A `go` statement (or goleak.Go call) in an opted-in package must spawn a
// function with provable teardown evidence:
//
//   - done channel: the body receives from (or ranges over) a channel that
//     is closed in the spawning function or in some live function of the
//     module ("live" = exported or referenced anywhere — the stand-in for
//     reachability from the shutdown surface).
//   - stop flag: an exit (break/return) is guarded by a bool field, an
//     atomic flag Load, or a predicate method reading one, and the flag is
//     set by a live function.
//   - WaitGroup join: the body calls Done on a WaitGroup whose Add happens
//     outside the body and whose Wait is called by the spawner or a live
//     function.
//   - error-break loop: a loop exits when a call returns a non-nil error,
//     and the call's inputs trace (through local assignments) to a value
//     that some live function Closes — the read-loop-over-a-connection
//     shape, stoppable by closing the source.
//   - joiner: the body itself just Waits on a WaitGroup that other tracked
//     goroutines Done — a drain helper terminates when they do.
//
// Spawns are expanded interprocedurally one call level (goleak.Go wrappers,
// `go p.run()` forwarders, method values), mirroring poollife. Anything
// with a genuinely external stop path is waived explicitly:
//
//	//bess:golife ignore=<reason>   (same line as the spawn, or line above)

type golifeDecl struct {
	p  *pkg
	fd *ast.FuncDecl
}

// golifeBody is one body the spawned function expands to, paired with the
// package whose type info covers it.
type golifeBody struct {
	p    *pkg
	body *ast.BlockStmt
}

type golifeAnalysis struct {
	dirs *directives
	r    *reporter
	pkgs []*pkg
	fset *token.FileSet

	decls      map[*types.Func]golifeDecl
	referenced map[*types.Func]bool
	seen       map[string]bool
}

func analyzeGoLife(pkgs []*pkg, dirs *directives, r *reporter) {
	opted := false
	for _, p := range pkgs {
		if dirs.golife[p.path] {
			opted = true
			break
		}
	}
	if !opted {
		return
	}
	a := &golifeAnalysis{
		dirs:       dirs,
		r:          r,
		pkgs:       pkgs,
		fset:       pkgs[0].fset,
		decls:      make(map[*types.Func]golifeDecl),
		referenced: make(map[*types.Func]bool),
		seen:       make(map[string]bool),
	}
	a.index()
	for _, p := range pkgs {
		if !dirs.golife[p.path] || p.isTest {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					a.checkFunc(p, fd)
				}
			}
		}
	}
}

// index records every function declaration and every referenced function
// object across the loaded packages.
func (a *golifeAnalysis) index() {
	for _, p := range a.pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.info.Defs[fd.Name].(*types.Func); ok {
					a.decls[fn] = golifeDecl{p: p, fd: fd}
				}
			}
		}
		for _, obj := range p.info.Uses {
			if fn, ok := obj.(*types.Func); ok {
				a.referenced[fn] = true
			}
		}
	}
}

// checkFunc visits every spawn in fd: bare go statements and goleak.Go
// calls alike.
func (a *golifeAnalysis) checkFunc(p *pkg, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			// `go goleak.Go(...)` would double-spawn; the CallExpr case
			// below owns that site.
			if !isGoleakGo(p, s.Call) {
				a.checkSpawn(p, fd, s.Pos(), s.Call.Fun)
			}
		case *ast.CallExpr:
			if isGoleakGo(p, s) && len(s.Args) == 2 {
				a.checkSpawn(p, fd, s.Pos(), s.Args[1])
			}
		}
		return true
	})
}

// isGoleakGo reports whether call is goleak.Go(name, fn).
func isGoleakGo(p *pkg, call *ast.CallExpr) bool {
	fn := calleeOf(p, call)
	return fn != nil && fn.Name() == "Go" && fn.Pkg() != nil && fn.Pkg().Name() == "goleak"
}

func (a *golifeAnalysis) checkSpawn(p *pkg, encl *ast.FuncDecl, pos token.Pos, fnExpr ast.Expr) {
	position := a.fset.Position(pos)
	if reason, ok := a.waiverAt(position); ok {
		if reason == "" {
			a.reportOnce(pos, "//bess:golife ignore waiver needs a reason (ignore=<why the stop path is external>)")
		}
		return
	}
	bodies := a.expand(p, fnExpr, 2)
	if len(bodies) == 0 {
		a.reportOnce(pos, "cannot resolve the spawned function to a body; waive with //bess:golife ignore=<reason> if its stop path is external")
		return
	}
	for _, b := range bodies {
		if a.waitGroupJoin(b, p, encl) || a.doneChannel(b, p, encl) ||
			a.stopFlag(b, p, encl) || a.errBreakLoop(b, p, encl) || a.waitJoiner(b) {
			return
		}
	}
	a.reportOnce(pos, "goroutine has no provable stop path: no done-channel close, stop flag, WaitGroup join, or error-break on a closable source is reachable from shutdown; fix the teardown or waive with //bess:golife ignore=<reason>")
}

// waiverAt looks for an ignore= directive on the spawn's line or the line
// directly above it.
func (a *golifeAnalysis) waiverAt(pos token.Position) (string, bool) {
	m := a.dirs.golifeIgnores[pos.Filename]
	if m == nil {
		return "", false
	}
	if r, ok := m[pos.Line]; ok {
		return r, true
	}
	if r, ok := m[pos.Line-1]; ok {
		return r, true
	}
	return "", false
}

// expand resolves the spawned expression to the bodies it executes: the
// function literal or named function itself, plus (depth permitting) the
// bodies of module functions it calls as plain statements — the forwarder
// and goleak.Go-wrapper shapes.
func (a *golifeAnalysis) expand(p *pkg, e ast.Expr, depth int) []golifeBody {
	e = ast.Unparen(e)
	var out []golifeBody
	switch n := e.(type) {
	case *ast.FuncLit:
		out = append(out, golifeBody{p: p, body: n.Body})
		if depth > 0 {
			out = append(out, a.expandCalls(p, n.Body, depth-1)...)
		}
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		switch id := n.(type) {
		case *ast.Ident:
			obj = p.info.Uses[id]
		case *ast.SelectorExpr:
			obj = p.info.Uses[id.Sel]
		}
		if fn, ok := obj.(*types.Func); ok {
			if d, ok := a.decls[fn]; ok && d.fd.Body != nil {
				out = append(out, golifeBody{p: d.p, body: d.fd.Body})
				if depth > 0 {
					out = append(out, a.expandCalls(d.p, d.fd.Body, depth-1)...)
				}
			}
		}
	}
	return out
}

// expandCalls returns the bodies of module functions called as top-level
// statements (or defers) of body.
func (a *golifeAnalysis) expandCalls(p *pkg, body *ast.BlockStmt, depth int) []golifeBody {
	var out []golifeBody
	add := func(call *ast.CallExpr) {
		fn := calleeOf(p, call)
		if fn == nil {
			return
		}
		if d, ok := a.decls[fn]; ok && d.fd.Body != nil {
			out = append(out, golifeBody{p: d.p, body: d.fd.Body})
			if depth > 0 {
				out = append(out, a.expandCalls(d.p, d.fd.Body, depth-1)...)
			}
		}
	}
	for _, st := range body.List {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				add(call)
			}
		case *ast.DeferStmt:
			add(s.Call)
		}
	}
	return out
}

// --- evidence rules ---

// waitGroupJoin: the body Dones a WaitGroup that is Added outside it and
// Waited on by the spawner or a live function.
func (a *golifeAnalysis) waitGroupJoin(b golifeBody, spawnPkg *pkg, encl *ast.FuncDecl) bool {
	var groups []types.Object
	eachMethodCall(b.p, b.body, func(recv types.Object, recvType types.Type, name string, call *ast.CallExpr) {
		if name == "Done" && recv != nil && isNamedType(recvType, "sync", "WaitGroup") {
			groups = append(groups, recv)
		}
	})
	for _, wg := range groups {
		if !a.calledOutside(b, wg, "Add") {
			continue
		}
		if callsMethodOn(spawnPkg, encl.Body, wg, "Wait") {
			return true
		}
		if a.anyLiveBody(func(p *pkg, fd *ast.FuncDecl) bool {
			return callsMethodOn(p, fd.Body, wg, "Wait")
		}) {
			return true
		}
	}
	return false
}

// waitJoiner: the body's job is to Wait on a WaitGroup other goroutines
// Done — it ends when they do (the bounded-drain helper shape).
func (a *golifeAnalysis) waitJoiner(b golifeBody) bool {
	ok := false
	eachMethodCall(b.p, b.body, func(recv types.Object, recvType types.Type, name string, call *ast.CallExpr) {
		if name == "Wait" && recv != nil && isNamedType(recvType, "sync", "WaitGroup") && a.calledOutside(b, recv, "Done") {
			ok = true
		}
	})
	return ok
}

// calledOutside reports whether obj.name(...) is called anywhere in the
// loaded packages at a position outside b's own body.
func (a *golifeAnalysis) calledOutside(b golifeBody, obj types.Object, name string) bool {
	for _, p := range a.pkgs {
		for _, f := range p.files {
			found := false
			ast.Inspect(f, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if call.Pos() >= b.body.Pos() && call.End() <= b.body.End() {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if ok && sel.Sel.Name == name && golifeTarget(p, sel.X) == obj {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// doneChannel: the body receives from a channel that the spawner or a live
// function closes.
func (a *golifeAnalysis) doneChannel(b golifeBody, spawnPkg *pkg, encl *ast.FuncDecl) bool {
	var chans []types.Object
	ast.Inspect(b.body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				if o := golifeTarget(b.p, e.X); o != nil {
					chans = append(chans, o)
				}
			}
		case *ast.RangeStmt:
			if t := b.p.info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if o := golifeTarget(b.p, e.X); o != nil {
						chans = append(chans, o)
					}
				}
			}
		}
		return true
	})
	for _, ch := range chans {
		if closesChan(spawnPkg, encl.Body, ch) {
			return true
		}
		if a.anyLiveBody(func(p *pkg, fd *ast.FuncDecl) bool {
			return closesChan(p, fd.Body, ch)
		}) {
			return true
		}
	}
	return false
}

// stopFlag: an exit is guarded by a flag (bool field, atomic Load, or a
// predicate method reading one) that a live function sets.
func (a *golifeAnalysis) stopFlag(b golifeBody, spawnPkg *pkg, encl *ast.FuncDecl) bool {
	var flags []types.Object
	collectCond := func(cond ast.Expr) {
		flags = append(flags, a.flagReads(b.p, cond, 1)...)
	}
	ast.Inspect(b.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if s.Cond != nil && exitsScope(s.Body) {
				collectCond(s.Cond)
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				collectCond(s.Cond)
			}
		}
		return true
	})
	for _, f := range flags {
		if setsFlag(spawnPkg, encl.Body, f) {
			return true
		}
		if a.anyLiveBody(func(p *pkg, fd *ast.FuncDecl) bool {
			return setsFlag(p, fd.Body, f)
		}) {
			return true
		}
	}
	return false
}

// flagReads extracts flag identities read by cond: bool fields, atomic
// Loads, and (one level deep) fields read by predicate methods.
func (a *golifeAnalysis) flagReads(p *pkg, cond ast.Expr, depth int) []types.Object {
	var out []types.Object
	ast.Inspect(cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if sel := p.info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
				if basic, ok := sel.Obj().Type().Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
					out = append(out, sel.Obj())
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Load" && isAtomicType(p.info.TypeOf(sel.X)) {
				if o := golifeTarget(p, sel.X); o != nil {
					out = append(out, o)
				}
				return true
			}
			if depth > 0 {
				if fn := calleeOf(p, e); fn != nil {
					if d, ok := a.decls[fn]; ok && d.fd.Body != nil {
						ast.Inspect(d.fd.Body, func(m ast.Node) bool {
							ret, ok := m.(*ast.ReturnStmt)
							if !ok {
								return true
							}
							for _, res := range ret.Results {
								out = append(out, a.flagReads(d.p, res, depth-1)...)
							}
							return true
						})
					}
				}
			}
		}
		return true
	})
	return out
}

// errBreakLoop: a loop in the body exits on a non-nil error from a call
// whose inputs trace to a value some live function Closes.
func (a *golifeAnalysis) errBreakLoop(b golifeBody, spawnPkg *pkg, encl *ast.FuncDecl) bool {
	sources := a.dataSources(b, spawnPkg, encl)
	ok := false
	ast.Inspect(b.body, func(n ast.Node) bool {
		if ok {
			return false
		}
		var loopBody *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			loopBody = s.Body
		case *ast.RangeStmt:
			loopBody = s.Body
		default:
			return true
		}
		for _, errObj := range errExitGuards(b.p, loopBody) {
			for _, call := range callsAssigning(b.p, loopBody, errObj) {
				for _, root := range a.rootsOf(b.p, call, sources, 3) {
					if a.closableRoot(root, spawnPkg, encl) {
						ok = true
						return false
					}
				}
			}
		}
		return true
	})
	return ok
}

// errExitGuards finds `if err != nil { break/return }` guards in a loop
// body and returns the error objects tested.
func errExitGuards(p *pkg, loopBody *ast.BlockStmt) []types.Object {
	var out []types.Object
	ast.Inspect(loopBody, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !exitsScope(ifs.Body) {
			return true
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || bin.Op != token.NEQ {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			id, ok := ast.Unparen(pair[0]).(*ast.Ident)
			if !ok {
				continue
			}
			nilIdent, ok := ast.Unparen(pair[1]).(*ast.Ident)
			if !ok || nilIdent.Name != "nil" {
				continue
			}
			if t := p.info.TypeOf(id); t != nil && isErrorType(t) {
				if o := golifeTarget(p, id); o != nil {
					out = append(out, o)
				}
			}
		}
		return true
	})
	return out
}

// callsAssigning finds call expressions whose results are assigned to obj
// within the loop (including if-statement init clauses).
func callsAssigning(p *pkg, loopBody *ast.BlockStmt, obj types.Object) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(loopBody, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && golifeTarget(p, id) == obj {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

// dataSources maps local objects to the expressions assigned to them,
// within both the spawned body and its spawning function.
func (a *golifeAnalysis) dataSources(b golifeBody, spawnPkg *pkg, encl *ast.FuncDecl) map[types.Object][]ast.Expr {
	src := make(map[types.Object][]ast.Expr)
	collect := func(p *pkg, root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				o := golifeTarget(p, id)
				if o == nil {
					continue
				}
				if i < len(as.Rhs) {
					src[o] = append(src[o], as.Rhs[i])
				} else if len(as.Rhs) == 1 {
					src[o] = append(src[o], as.Rhs[0])
				}
			}
			return true
		})
	}
	collect(b.p, b.body)
	collect(spawnPkg, encl.Body)
	return src
}

// rootsOf extracts the stable identities a call reads from: struct fields
// directly, and locals expanded through their assignments.
func (a *golifeAnalysis) rootsOf(p *pkg, call *ast.CallExpr, sources map[types.Object][]ast.Expr, depth int) []types.Object {
	var out []types.Object
	var visit func(e ast.Expr, depth int)
	visit = func(e ast.Expr, depth int) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch id := n.(type) {
			case *ast.SelectorExpr:
				if sel := p.info.Selections[id]; sel != nil && sel.Kind() == types.FieldVal {
					out = append(out, sel.Obj())
					return false
				}
			case *ast.Ident:
				o := golifeTarget(p, id)
				if o == nil {
					return true
				}
				if _, isVar := o.(*types.Var); !isVar {
					return true
				}
				out = append(out, o)
				if depth > 0 {
					for _, src := range sources[o] {
						visit(src, depth-1)
					}
				}
			}
			return true
		})
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		visit(sel.X, depth)
	}
	for _, arg := range call.Args {
		visit(arg, depth)
	}
	return out
}

// closableRoot reports whether some live function closes root — by object
// identity, or (for module named types) by a Close call on the same type.
func (a *golifeAnalysis) closableRoot(root types.Object, spawnPkg *pkg, encl *ast.FuncDecl) bool {
	if callsMethodOn(spawnPkg, encl.Body, root, "Close") {
		return true
	}
	if a.anyLiveBody(func(p *pkg, fd *ast.FuncDecl) bool {
		return callsMethodOn(p, fd.Body, root, "Close")
	}) {
		return true
	}
	// Type fallback: a local alias of a module-typed value (listener saved
	// into a struct field, say) counts when the type is closed somewhere.
	named := namedOf(root.Type())
	if named == nil {
		return false
	}
	return a.anyLiveBody(func(p *pkg, fd *ast.FuncDecl) bool {
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" {
				return true
			}
			if t := p.info.TypeOf(sel.X); t != nil && namedOf(t) == named {
				found = true
				return false
			}
			return true
		})
		return found
	})
}

// anyLiveBody runs fn over every exported-or-referenced function until one
// returns true.
func (a *golifeAnalysis) anyLiveBody(fn func(p *pkg, fd *ast.FuncDecl) bool) bool {
	for obj, d := range a.decls {
		if d.fd.Body == nil {
			continue
		}
		if !obj.Exported() && !a.referenced[obj] {
			continue
		}
		if fn(d.p, d.fd) {
			return true
		}
	}
	return false
}

func (a *golifeAnalysis) reportOnce(pos token.Pos, format string, args ...any) {
	p := a.fset.Position(pos)
	key := p.Filename + ":" + itoa(p.Line)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.r.report(pos, "golife", format, args...)
}

// --- shared identity helpers ---

// golifeTarget resolves x or s.f to a stable object: a struct field var or
// a local/package object.
func golifeTarget(p *pkg, e ast.Expr) types.Object {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := p.info.Uses[n]; o != nil {
			return o
		}
		return p.info.Defs[n]
	case *ast.SelectorExpr:
		if sel := p.info.Selections[n]; sel != nil {
			return sel.Obj()
		}
		return p.info.Uses[n.Sel]
	}
	return nil
}

// eachMethodCall visits every method-shaped call in root with its resolved
// receiver object and static receiver type.
func eachMethodCall(p *pkg, root ast.Node, fn func(recv types.Object, recvType types.Type, name string, call *ast.CallExpr)) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn(golifeTarget(p, sel.X), p.info.TypeOf(sel.X), sel.Sel.Name, call)
		return true
	})
}

// callsMethodOn reports whether obj.name(...) is called anywhere in root.
func callsMethodOn(p *pkg, root ast.Node, obj types.Object, name string) bool {
	if obj == nil {
		return false
	}
	found := false
	eachMethodCall(p, root, func(recv types.Object, _ types.Type, n string, _ *ast.CallExpr) {
		if n == name && recv == obj {
			found = true
		}
	})
	return found
}

// closesChan reports whether close(ch) with ch resolving to obj appears in
// root.
func closesChan(p *pkg, root ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if golifeTarget(p, call.Args[0]) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// setsFlag reports whether root assigns true to obj or calls
// obj.Store(true).
func setsFlag(p *pkg, root ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if golifeTarget(p, lhs) != obj {
					continue
				}
				if i < len(s.Rhs) {
					if id, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident); ok && id.Name == "true" {
						found = true
						return false
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "Store" && golifeTarget(p, sel.X) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exitsScope reports whether block contains a break or return outside any
// nested function literal.
func exitsScope(block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}

// isNamedType reports whether t (pointer-stripped) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == pkgPath && o.Name() == name
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
func isAtomicType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	o := named.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch o.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Pointer", "Value":
		return true
	}
	return false
}

// namedOf strips pointers and returns the *types.Named beneath, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
