package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// --- crcpath: //bess:verified read paths must verify a checksum ---
//
// A function marked //bess:verified is a read path that hands out image
// bytes (page, section, or frame contents) with an end-to-end integrity
// promise: somewhere in its body — before those bytes escape — it must call
// a checksum verifier. The check is syntactic and deliberately simple: any
// call whose callee is named Verify* (page.Verify, Seg.VerifyData,
// Log.Verify, ...) satisfies it, including calls inside function literals
// the body defines (a retry closure that verifies still counts). What it
// catches is the real regression: someone reroutes a verified read path
// around the verifier — drops the VerifyData call while refactoring a
// fetch — and the checksum silently stops protecting that path.

// analyzeCrcPath reports //bess:verified functions that never call a
// Verify* function.
func analyzeCrcPath(pkgs []*pkg, dirs *directives, r *reporter) {
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := p.info.Defs[fn.Name].(*types.Func)
				if obj == nil || !dirs.verified[obj] {
					continue
				}
				if !callsVerifier(fn.Body) {
					r.report(fn.Pos(), "crcpath",
						"%s is marked //bess:verified but never calls a Verify* checksum function", obj.Name())
				}
			}
		}
	}
}

// callsVerifier reports whether any call expression under body has a
// callee named Verify or Verify<Something>.
func callsVerifier(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.HasPrefix(name, "Verify") {
			found = true
			return false
		}
		return true
	})
	return found
}
