package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// collectWants scans the fixture tree for `// want <analyzer>` markers and
// returns the expected findings as "file:line:analyzer" keys.
func collectWants(t *testing.T, root string) map[string]bool {
	t.Helper()
	wants := map[string]bool{}
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			for _, a := range strings.Fields(text[idx+len("// want "):]) {
				wants[fmt.Sprintf("%s:%d:%s", filepath.Base(path), line, a)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestFixtures proves the analyzers catch the pre-fix bug classes: every
// `// want` marker in testdata must produce exactly one finding, and the
// fixtures must produce nothing else (no false positives).
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src", "fixture")
	findings, err := run(root, []string{"./..."}, "")
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)
	got := map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d:%s", filepath.Base(f.pos.Filename), f.pos.Line, f.analyzer)
		if got[key] {
			t.Errorf("duplicate finding %s: %s", key, f.msg)
		}
		got[key] = true
		if !wants[key] {
			t.Errorf("unexpected finding %s: %s", key, f.msg)
		}
	}
	var missing []string
	for w := range wants {
		if !got[w] {
			missing = append(missing, w)
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("expected finding not reported: %s", m)
	}
	if len(wants) == 0 {
		t.Fatal("no // want markers found under testdata (fixture tree missing?)")
	}
}

// TestAnalyzerSubset checks -only filtering.
func TestAnalyzerSubset(t *testing.T) {
	root := filepath.Join("testdata", "src", "fixture")
	findings, err := run(root, []string{"./..."}, "guarded")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.analyzer != "guarded" {
			t.Errorf("-only=guarded reported %s finding at %s:%d", f.analyzer, f.pos.Filename, f.pos.Line)
		}
	}
	if len(findings) == 0 {
		t.Fatal("guarded fixtures produced no findings")
	}
}

// TestCodecPairsPinned pins the set of Append*/Decode* pairs codecsym
// registers in internal/proto. A new codec that fails to show up here was
// named outside the Append|Encode/Decode convention and is invisible to the
// symmetry check; an entry vanishing means a pair lost its directive opt-in
// or was renamed apart.
func TestCodecPairsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks internal/proto")
	}
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modRoot, modPath)
	pkgs, err := l.load([]string{"./internal/proto"})
	if err != nil {
		t.Fatal(err)
	}
	dirs := newDirectives()
	for _, p := range pkgs {
		dirs.collect(p)
	}
	var got []string
	for _, pr := range pairCodecs(gatherCodecs(pkgs, dirs)) {
		if pr.enc == nil || pr.dec == nil {
			t.Errorf("pair %q is missing a side (enc=%v dec=%v)", pr.key, pr.enc != nil, pr.dec != nil)
			continue
		}
		got = append(got, pr.key)
	}
	want := []string{
		"callbackargs", "callbackreply", "commitargs",
		"fetchargs", "fetchlargeargs", "fetchslottedreply",
		"lockargs", "lockobjectargs",
		"scanbatch", "scanctl", "scanstartargs", "scanstartreply",
		"section", "segimage", "segkey",
		"snapcloseargs", "snapfetchargs", "snapopenargs",
		"snapopenreply", "snapscanstartargs",
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("registered codec pairs changed:\n got: %v\nwant: %v\n(update the pinned list only after checking the new pair is symmetric)", got, want)
	}
}

// TestRealTreeClean is the acceptance gate: the repository's own packages
// must be clean under all seven analyzers.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	findings, err := run(".", []string{"./internal/...", "./cmd/..."}, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.analyzer, f.msg)
	}
}
