package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// walorder proves the write-ahead ordering contract inside //bess:walorder
// packages (DESIGN.md §4f):
//
//  1. Log-before-data: every page-store sink — a call whose static callee
//     is declared by //bess:walsink Type.Method — must be dominated on its
//     path by a WAL append (a call to a method named Append on a type named
//     Log, or to a function whose call-graph summary proves it performs
//     one). Recovery's redo/undo replay and abort's before-image restore
//     re-apply already-logged records; those sites carry
//     //bess:walorder ignore=<reason> waivers.
//
//  2. Capture-before-mutate: for each declared
//     //bess:walorder capture=T.M mutate=T.M pair, every call to the
//     mutate function must be preceded, in the same function, by a call to
//     the capture function — the pre-update image must be staged for open
//     snapshots before the first page of the new image lands.
//
//  3. Monotone LSN chains: an identifier assigned from an Append result
//     goes stale as soon as a later Append runs; using a stale identifier
//     as a record's PrevLSN would fork the per-transaction chain.
//
// The walk is a source-order scan of each function body: branch bodies are
// visited sequentially and effects persist (an Append inside one arm of an
// if marks the path logged). That is deliberately optimistic — the fixtures
// pin the classes it must catch, and the walcheck runtime checker covers
// the residual path sensitivity under -tags walcheck.
type walAnalysis struct {
	dirs        *directives
	r           *reporter
	fset        *token.FileSet
	decls       map[*types.Func]*walDecl
	providesLog map[*types.Func]bool
	seen        map[string]bool
}

type walDecl struct {
	p  *pkg
	fd *ast.FuncDecl
}

func analyzeWALOrder(pkgs []*pkg, dirs *directives, r *reporter) {
	w := &walAnalysis{
		dirs:        dirs,
		r:           r,
		decls:       make(map[*types.Func]*walDecl),
		providesLog: make(map[*types.Func]bool),
		seen:        make(map[string]bool),
	}
	var marked []*pkg
	for _, p := range pkgs {
		if !dirs.walorder[p.path] {
			continue
		}
		marked = append(marked, p)
		w.fset = p.fset
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, _ := p.info.Defs[fd.Name].(*types.Func); fn != nil {
					w.decls[fn] = &walDecl{p: p, fd: fd}
				}
			}
		}
	}
	if len(marked) == 0 {
		return
	}
	w.buildProvidesLog()
	for _, d := range w.decls {
		walkFuncWAL(w, d)
	}
}

// buildProvidesLog runs the fixpoint: a function provides a log append if
// its body contains one directly or calls a function that does.
func (w *walAnalysis) buildProvidesLog() {
	callees := make(map[*types.Func][]*types.Func)
	for fn, d := range w.decls {
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isLogAppend(d.p, call) {
				w.providesLog[fn] = true
				return true
			}
			if callee := calleeOf(d.p, call); callee != nil {
				if _, known := w.decls[callee]; known {
					callees[fn] = append(callees[fn], callee)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if w.providesLog[fn] {
				continue
			}
			for _, c := range cs {
				if w.providesLog[c] {
					w.providesLog[fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// isLogAppend reports whether call appends a WAL record: a method named
// Append on a (pointer to a) named type called Log. Name-based so the
// fixture's miniature Log matches alongside bess/internal/wal.Log.
func isLogAppend(p *pkg, call *ast.CallExpr) bool {
	fn := calleeOf(p, call)
	if fn == nil || fn.Name() != "Append" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "Log"
}

// funcKey renders a *types.Func as the "Type.Method" (or bare function)
// name the walsink and capture= directives use.
func funcKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name()
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return fn.Name()
	}
	return named.Obj().Name() + "." + fn.Name()
}

// walWalk carries the per-function path state.
type walWalk struct {
	w *walAnalysis
	d *walDecl

	logged    bool
	captured  map[string]bool
	appendSeq int
	lsnSeq    map[types.Object]int
}

func walkFuncWAL(w *walAnalysis, d *walDecl) {
	fw := &walWalk{
		w:        w,
		d:        d,
		captured: make(map[string]bool),
		lsnSeq:   make(map[types.Object]int),
	}
	fw.block(d.fd.Body)
}

func (fw *walWalk) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		fw.stmt(s)
	}
}

func (fw *walWalk) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		fw.expr(n.X)
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			fw.expr(rhs)
		}
		// lsn, err := l.Append(...) — bind the first LHS ident to the
		// append that just ran.
		if len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isLogAppend(fw.d.p, call) && len(n.Lhs) > 0 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if obj := identObj(fw.d.p, id); obj != nil {
						fw.lsnSeq[obj] = fw.appendSeq
					}
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fw.expr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		if n.Init != nil {
			fw.stmt(n.Init)
		}
		fw.expr(n.Cond)
		fw.block(n.Body)
		if n.Else != nil {
			fw.stmt(n.Else)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			fw.stmt(n.Init)
		}
		if n.Cond != nil {
			fw.expr(n.Cond)
		}
		fw.block(n.Body)
		if n.Post != nil {
			fw.stmt(n.Post)
		}
	case *ast.RangeStmt:
		fw.expr(n.X)
		fw.block(n.Body)
	case *ast.BlockStmt:
		fw.block(n)
	case *ast.SwitchStmt:
		if n.Init != nil {
			fw.stmt(n.Init)
		}
		if n.Tag != nil {
			fw.expr(n.Tag)
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					fw.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					fw.stmt(s)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, s := range cc.Body {
					fw.stmt(s)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			fw.expr(e)
		}
	case *ast.DeferStmt:
		fw.call(n.Call)
	case *ast.GoStmt:
		fw.call(n.Call)
	case *ast.LabeledStmt:
		fw.stmt(n.Stmt)
	case *ast.SendStmt:
		fw.expr(n.Value)
	}
}

// expr visits call expressions in evaluation order. Function literals are
// skipped: a closure runs at an unknown point, so its body cannot borrow
// this path's logged state (the runtime checker covers those edges).
func (fw *walWalk) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fw.call(call)
		}
		return true
	})
}

// call classifies one call expression against the walorder event kinds.
func (fw *walWalk) call(call *ast.CallExpr) {
	p := fw.d.p
	if isLogAppend(p, call) {
		fw.checkPrevLSN(call)
		fw.appendSeq++
		fw.logged = true
		return
	}
	callee := calleeOf(p, call)
	if callee == nil {
		return
	}
	key := funcKey(callee)
	if fw.w.dirs.walsinks[key] {
		if !fw.logged && !fw.waived(call.Pos()) {
			fw.report(call.Pos(), "page store via %s before any wal append on this path — the log-before-data rule requires the covering record first; reorder, or waive with //bess:walorder ignore=<reason> for replay paths", key)
		}
		return
	}
	for _, pair := range fw.w.dirs.walcaptures {
		if key == pair.capture {
			fw.captured[pair.capture] = true
		}
		if key == pair.mutate && !fw.captured[pair.capture] && !fw.waived(call.Pos()) {
			fw.report(call.Pos(), "call to %s without a preceding %s capture — open snapshots need the pre-update image staged before the overwrite begins", pair.mutate, pair.capture)
		}
	}
	if fw.w.providesLog[callee] {
		fw.logged = true
	}
}

// checkPrevLSN flags a PrevLSN field initialized from an identifier that
// was assigned by an Append older than the most recent one on this path.
func (fw *walWalk) checkPrevLSN(call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "PrevLSN" {
				return true
			}
			id, ok := ast.Unparen(kv.Value).(*ast.Ident)
			if !ok {
				return true
			}
			obj := identObj(fw.d.p, id)
			if obj == nil {
				return true
			}
			if seq, tracked := fw.lsnSeq[obj]; tracked && seq < fw.appendSeq && !fw.waived(id.Pos()) {
				fw.report(id.Pos(), "PrevLSN uses %s, which predates a later Append on this path — the per-transaction LSN chain must be monotone; reassign the chain head after every Append", id.Name)
			}
			return true
		})
	}
}

func (fw *walWalk) waived(pos token.Pos) bool {
	position := fw.w.fset.Position(pos)
	m := fw.w.dirs.walorderIgnores[position.Filename]
	if m == nil {
		return false
	}
	_, same := m[position.Line]
	_, above := m[position.Line-1]
	return same || above
}

func (fw *walWalk) report(pos token.Pos, format string, args ...any) {
	position := fw.w.fset.Position(pos)
	key := position.Filename + ":" + itoa(position.Line)
	if fw.w.seen[key] {
		return
	}
	fw.w.seen[key] = true
	fw.w.r.report(pos, "walorder", format, args...)
}

// identObj resolves an identifier to its object (use or def).
func identObj(p *pkg, id *ast.Ident) types.Object {
	if o := p.info.Uses[id]; o != nil {
		return o
	}
	return p.info.Defs[id]
}
