package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockfree enforces the E16 contract: everything reachable from a
// //bess:lockfree root (SnapFetchSeg, the snapshot scan path, version-chain
// readers) takes zero locks. The analyzer runs an interprocedural taint
// walk over the static call graph from each root; any reachable
// Lock/RLock on a sync or lockcheck mutex, or Acquire on a lock manager,
// is a finding.
//
// A //bess:lockfree ignore=<reason> waiver on (or above) a call line does
// two things: it suppresses findings on that line and it prunes the walk
// into that callee — the right shape for branches that are legitimately
// locked (the pull path of a shared scan loop) and for short in-memory
// critical sections that are part of the design (the version store's
// chain mutex, flow-control credit counters). Interface and closure-value
// calls are not resolved; the E16 lock-stats delta assertion covers those
// edges at runtime.
type lockfreeAnalysis struct {
	dirs  *directives
	r     *reporter
	fset  *token.FileSet
	decls map[*types.Func]*walDecl
	seen  map[string]bool
}

func analyzeLockFree(pkgs []*pkg, dirs *directives, r *reporter) {
	if len(dirs.lockfreeRoots) == 0 {
		return
	}
	a := &lockfreeAnalysis{
		dirs:  dirs,
		r:     r,
		decls: make(map[*types.Func]*walDecl),
		seen:  make(map[string]bool),
	}
	for _, p := range pkgs {
		a.fset = p.fset
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, _ := p.info.Defs[fd.Name].(*types.Func); fn != nil {
					a.decls[fn] = &walDecl{p: p, fd: fd}
				}
			}
		}
	}
	type item struct {
		fn   *types.Func
		path []string
	}
	visited := make(map[*types.Func]bool)
	var queue []item
	for root := range a.dirs.lockfreeRoots {
		if _, ok := a.decls[root]; ok {
			queue = append(queue, item{fn: root, path: []string{root.Name()}})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.fn] {
			continue
		}
		visited[it.fn] = true
		d := a.decls[it.fn]
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lockName, isLock := a.lockAcquire(d.p, call); isLock {
				if !a.waived(call.Pos()) {
					a.reportOnce(call.Pos(),
						"%s acquired on the lock-free path %s — snapshot readers must take no locks; restructure (copy-on-write, atomics) or waive with //bess:lockfree ignore=<reason>",
						lockName, strings.Join(it.path, " → "))
				}
				return true
			}
			callee := calleeOf(d.p, call)
			if callee == nil || visited[callee] {
				return true
			}
			if _, known := a.decls[callee]; !known {
				return true
			}
			if a.waived(call.Pos()) {
				return true // waiver prunes the walk into this callee
			}
			queue = append(queue, item{fn: callee, path: append(append([]string(nil), it.path...), callee.Name())})
			return true
		})
	}
}

// lockAcquire classifies a call as a blocking lock acquisition: Lock/RLock
// on sync.Mutex/RWMutex or a lockcheck mutex, or Acquire on a type named
// Manager (the 2PL lock manager).
func (a *lockfreeAnalysis) lockAcquire(p *pkg, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(p, call)
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	isMutex := (obj.Name() == "Mutex" || obj.Name() == "RWMutex") &&
		(pkgPath == "sync" || strings.HasSuffix(pkgPath, "internal/lockcheck"))
	switch {
	case isMutex && (fn.Name() == "Lock" || fn.Name() == "RLock"):
		return types.ExprString(call.Fun), true
	case obj.Name() == "Manager" && fn.Name() == "Acquire":
		return types.ExprString(call.Fun), true
	}
	return "", false
}

func (a *lockfreeAnalysis) waived(pos token.Pos) bool {
	position := a.fset.Position(pos)
	m := a.dirs.lockfreeIgnores[position.Filename]
	if m == nil {
		return false
	}
	_, same := m[position.Line]
	_, above := m[position.Line-1]
	return same || above
}

func (a *lockfreeAnalysis) reportOnce(pos token.Pos, format string, args ...any) {
	position := a.fset.Position(pos)
	key := position.Filename + ":" + itoa(position.Line)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.r.report(pos, "lockfree", format, args...)
}
