package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// directives are the machine-readable annotations bess-vet consumes:
//
//	//bess:lockorder A.x < B.y < ...   (package server, lockorder.go)
//	//bess:holds mu                    (func contract: caller holds recv.mu)
//	//bess:prepublish                  (func builds a value not yet shared)
//	// guarded by mu                   (struct field annotation)
type directives struct {
	// rank maps a lock class ("Server.areaMu") to its position in the
	// declared hierarchy (1-based; outermost lowest). 0 = unranked.
	rank      map[string]int
	orderSrc  token.Pos // where the //bess:lockorder directive lives
	orderSeen []string  // classes in declaration order, for messages

	holds      map[*types.Func]string // func -> mutex field name
	prepublish map[*types.Func]bool
	guarded    map[*types.Var]string // struct field -> mutex field name
}

func newDirectives() *directives {
	return &directives{
		rank:       make(map[string]int),
		holds:      make(map[*types.Func]string),
		prepublish: make(map[*types.Func]bool),
		guarded:    make(map[*types.Var]string),
	}
}

// collect scans one type-checked package for all directive forms.
func (d *directives) collect(p *pkg) error {
	for _, f := range p.files {
		// File-level comments: the lockorder declaration may sit in any
		// comment group (bess keeps it in the package doc of lockorder.go).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if rest, ok := strings.CutPrefix(text, "bess:lockorder "); ok {
					if err := d.parseOrder(rest, c.Pos()); err != nil {
						return err
					}
				}
			}
		}
		for _, decl := range f.Decls {
			switch n := decl.(type) {
			case *ast.FuncDecl:
				d.collectFunc(p, n)
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					d.collectGuarded(p, st)
				}
			}
		}
	}
	return nil
}

func (d *directives) parseOrder(spec string, pos token.Pos) error {
	if len(d.orderSeen) > 0 {
		return fmt.Errorf("duplicate //bess:lockorder directive")
	}
	d.orderSrc = pos
	for i, part := range strings.Split(spec, "<") {
		name := strings.TrimSpace(part)
		if name == "" || !strings.Contains(name, ".") {
			return fmt.Errorf("//bess:lockorder: bad lock class %q (want Type.field)", name)
		}
		if _, dup := d.rank[name]; dup {
			return fmt.Errorf("//bess:lockorder: %s listed twice", name)
		}
		d.rank[name] = i + 1
		d.orderSeen = append(d.orderSeen, name)
	}
	return nil
}

func (d *directives) collectFunc(p *pkg, fn *ast.FuncDecl) {
	if fn.Doc == nil {
		return
	}
	obj, _ := p.info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "bess:holds "); ok {
			d.holds[obj] = strings.TrimSpace(rest)
		}
		if text == "bess:prepublish" {
			d.prepublish[obj] = true
		}
	}
}

// collectGuarded records `// guarded by <mu>` field annotations. The marker
// may appear in the field's trailing line comment or its doc comment, and
// may be followed by prose after a separator ("guarded by mu; ...").
func (d *directives) collectGuarded(p *pkg, st *ast.StructType) {
	for _, field := range st.Fields.List {
		mu := guardedMu(field.Comment)
		if mu == "" {
			mu = guardedMu(field.Doc)
		}
		if mu == "" {
			continue
		}
		for _, name := range field.Names {
			if v, ok := p.info.Defs[name].(*types.Var); ok {
				d.guarded[v] = mu
			}
		}
	}
}

func guardedMu(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		idx := strings.Index(text, "guarded by ")
		if idx < 0 {
			continue
		}
		rest := text[idx+len("guarded by "):]
		// The mutex name ends at the first separator or space.
		end := strings.IndexFunc(rest, func(r rune) bool {
			return r == ';' || r == ',' || r == ' ' || r == '.' || r == ':'
		})
		if end >= 0 {
			rest = rest[:end]
		}
		if rest != "" {
			return rest
		}
	}
	return ""
}
