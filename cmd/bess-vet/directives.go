package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// directives are the machine-readable annotations bess-vet consumes:
//
//	//bess:lockorder A.x < B.y < ...   (package server, lockorder.go)
//	//bess:holds mu                    (func contract: caller holds recv.mu)
//	//bess:prepublish                  (func builds a value not yet shared)
//	// guarded by mu                   (struct field annotation)
//	//bess:resource acquire=F release=G [sink=T.f[,T.g]] [mode=owned|pinned]
//	//bess:codecsym                    (package opts into codec symmetry)
//	//bess:golife                      (package opts into goroutine lifecycle)
//	//bess:golife ignore=<reason>      (waives the go statement on/under it)
//	//bess:walorder                    (package opts into write-ahead ordering)
//	//bess:walorder capture=T.M mutate=T.M  (mutate calls need a prior capture)
//	//bess:walorder ignore=<reason>    (waives the sink/mutate on/under it)
//	//bess:walsink Type.Method         (calls to it are page-store sink events)
//	//bess:lockfree                    (func doc: taint root for lock freedom)
//	//bess:lockfree ignore=<reason>    (waives the lock/call on/under it)
//	//bess:hotpath                     (func doc: per-op allocations flagged)
//	//bess:hotpath ignore=<reason>     (waives the allocation on/under it)
//	//bess:verified                    (func doc: read path must call Verify*)
//
// A //bess: line whose verb is unknown, or whose argument does not parse,
// is itself a finding (analyzer "directive") — a typo must not silently
// disable checking.
type directives struct {
	// rank maps a lock class ("Server.areaMu") to its position in the
	// declared hierarchy (1-based; outermost lowest). 0 = unranked.
	rank      map[string]int
	orderSrc  token.Pos // where the //bess:lockorder directive lives
	orderSeen []string  // classes in declaration order, for messages

	holds      map[*types.Func]string // func -> mutex field name
	prepublish map[*types.Func]bool
	guarded    map[*types.Var]string // struct field -> mutex field name

	resources []*resourceDecl // //bess:resource pairs, all packages
	codecsym  map[string]bool // package path -> opted into codecsym

	golife map[string]bool // package path -> opted into goroutine lifecycle
	// golifeIgnores maps file -> line -> waiver reason. A waiver applies to
	// a spawn on the same line (trailing comment) or on the line below it
	// (comment-above style). An empty reason is itself a finding.
	golifeIgnores map[string]map[int]string

	walorder        map[string]bool // package path -> opted into WAL ordering
	walsinks        map[string]bool // "Type.Method" names treated as page-store sinks
	walcaptures     []capturePair   // capture-before-mutate requirements
	walorderIgnores map[string]map[int]string

	lockfreeRoots   map[*types.Func]bool // taint roots for the lockfree analyzer
	lockfreeIgnores map[string]map[int]string

	hotpath        map[*types.Func]bool // functions under per-op allocation review
	hotpathIgnores map[string]map[int]string

	verified map[*types.Func]bool // read paths that must call a Verify* function

	// bad collects malformed or unknown //bess: directives; run() reports
	// them under the "directive" analyzer.
	bad []dirDiag
}

// capturePair declares that every call to mutate must be preceded, in the
// same function, by a call to capture (name-matched as "Type.Method" of the
// static callee, so the pair may live in another package).
type capturePair struct {
	capture, mutate string
	pos             token.Pos
}

// dirDiag is one malformed/unknown directive, reported as a finding.
type dirDiag struct {
	pos token.Pos
	msg string
}

func newDirectives() *directives {
	return &directives{
		rank:            make(map[string]int),
		holds:           make(map[*types.Func]string),
		prepublish:      make(map[*types.Func]bool),
		guarded:         make(map[*types.Var]string),
		codecsym:        make(map[string]bool),
		golife:          make(map[string]bool),
		golifeIgnores:   make(map[string]map[int]string),
		walorder:        make(map[string]bool),
		walsinks:        make(map[string]bool),
		walorderIgnores: make(map[string]map[int]string),
		lockfreeRoots:   make(map[*types.Func]bool),
		lockfreeIgnores: make(map[string]map[int]string),
		hotpath:         make(map[*types.Func]bool),
		hotpathIgnores:  make(map[string]map[int]string),
		verified:        make(map[*types.Func]bool),
	}
}

// resourceDecl is one //bess:resource pair. In owned mode (the default) the
// acquire result is an owned value that must reach the release function (or
// a declared sink field, or a return) on every path; in pinned mode only
// double-release and use-after-release are checked, because pins and
// mappings legitimately outlive the acquiring function.
type resourceDecl struct {
	name    string // "getBuf/putBuf", for messages
	acquire *types.Func
	release *types.Func
	sinks   map[*types.Var]bool // struct fields allowed to hold the value
	pinned  bool
	// argKeyed: the acquire returns no resource value (only error); the
	// release identifies the resource by its first argument expression
	// (Space.Map / Space.Unmap style). Checked for double-release only.
	argKeyed bool
	pos      token.Pos
}

// collect scans one type-checked package for all directive forms. Malformed
// or unknown directives are recorded in d.bad, never silently skipped.
func (d *directives) collect(p *pkg) {
	for _, f := range p.files {
		// File-level comments: the lockorder declaration may sit in any
		// comment group (bess keeps it in the package doc of lockorder.go).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if rest, ok := strings.CutPrefix(text, "bess:"); ok {
					d.parseDirective(p, rest, c.Pos())
				}
			}
		}
		for _, decl := range f.Decls {
			switch n := decl.(type) {
			case *ast.FuncDecl:
				d.collectFunc(p, n)
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					d.collectGuarded(p, st)
				}
			}
		}
	}
}

func (d *directives) badf(pos token.Pos, format string, args ...any) {
	d.bad = append(d.bad, dirDiag{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// ignoreAt records an ignore= waiver line; an empty reason is a finding
// right away (a waiver must say why). Anything after an embedded "//" is a
// trailing comment, not part of the reason.
func (d *directives) ignoreAt(p *pkg, verb string, ignores map[string]map[int]string, reason string, pos token.Pos) {
	reason, _, _ = strings.Cut(reason, "//")
	if strings.TrimSpace(reason) == "" {
		d.badf(pos, "//bess:%s ignore waiver needs a reason (ignore=<why this site is safe>)", verb)
		return
	}
	position := p.fset.Position(pos)
	m := ignores[position.Filename]
	if m == nil {
		m = make(map[int]string)
		ignores[position.Filename] = m
	}
	m[position.Line] = strings.TrimSpace(reason)
}

// parseDirective dispatches one "//bess:<verb> [arg]" line. rest is the text
// after "bess:".
func (d *directives) parseDirective(p *pkg, rest string, pos token.Pos) {
	verb, arg, _ := strings.Cut(rest, " ")
	arg = strings.TrimSpace(arg)
	switch verb {
	case "lockorder":
		if arg == "" {
			d.badf(pos, "//bess:lockorder needs a hierarchy (A.x < B.y < ...)")
			return
		}
		if err := d.parseOrder(arg, pos); err != nil {
			d.badf(pos, "%v", err)
		}
	case "resource":
		if arg == "" {
			d.badf(pos, "//bess:resource needs acquire= and release= clauses")
			return
		}
		if err := d.parseResource(p, arg, pos); err != nil {
			d.badf(pos, "%v", err)
		}
	case "codecsym":
		if arg != "" {
			d.badf(pos, "//bess:codecsym takes no argument (got %q)", arg)
			return
		}
		d.codecsym[p.path] = true
	case "golife":
		if arg == "" {
			d.golife[p.path] = true
			return
		}
		if reason, ok := strings.CutPrefix(arg, "ignore="); ok {
			// golife checks the reason itself (empty reason = golife finding),
			// so record even an empty one.
			position := p.fset.Position(pos)
			m := d.golifeIgnores[position.Filename]
			if m == nil {
				m = make(map[int]string)
				d.golifeIgnores[position.Filename] = m
			}
			m[position.Line] = strings.TrimSpace(reason)
			return
		}
		d.badf(pos, "//bess:golife: unknown clause %q (want bare or ignore=<reason>)", arg)
	case "holds":
		if arg == "" {
			d.badf(pos, "//bess:holds needs a mutex field name")
		}
	case "prepublish":
		if arg != "" {
			d.badf(pos, "//bess:prepublish takes no argument (got %q)", arg)
		}
	case "walorder":
		switch {
		case arg == "":
			d.walorder[p.path] = true
		case strings.HasPrefix(arg, "ignore="):
			d.ignoreAt(p, "walorder", d.walorderIgnores, strings.TrimPrefix(arg, "ignore="), pos)
		case strings.HasPrefix(arg, "capture="):
			if err := d.parseCapture(arg, pos); err != nil {
				d.badf(pos, "%v", err)
			}
		default:
			d.badf(pos, "//bess:walorder: unknown clause %q (want bare, ignore=<reason>, or capture=T.M mutate=T.M)", arg)
		}
	case "walsink":
		if arg == "" || !strings.Contains(arg, ".") || strings.ContainsAny(arg, " =") {
			d.badf(pos, "//bess:walsink needs a Type.Method name (got %q)", arg)
			return
		}
		d.walsinks[arg] = true
	case "lockfree":
		switch {
		case arg == "":
			// Bare form: attaches to the function whose doc comment holds it
			// (collectFunc); harmless elsewhere.
		case strings.HasPrefix(arg, "ignore="):
			d.ignoreAt(p, "lockfree", d.lockfreeIgnores, strings.TrimPrefix(arg, "ignore="), pos)
		default:
			d.badf(pos, "//bess:lockfree: unknown clause %q (want bare or ignore=<reason>)", arg)
		}
	case "hotpath":
		switch {
		case arg == "":
			// Bare form: attaches via collectFunc.
		case strings.HasPrefix(arg, "ignore="):
			d.ignoreAt(p, "hotpath", d.hotpathIgnores, strings.TrimPrefix(arg, "ignore="), pos)
		default:
			d.badf(pos, "//bess:hotpath: unknown clause %q (want bare or ignore=<reason>)", arg)
		}
	case "verified":
		if arg != "" {
			d.badf(pos, "//bess:verified takes no argument (got %q)", arg)
		}
		// Bare form: attaches to the function whose doc holds it (collectFunc).
	default:
		d.badf(pos, "unknown //bess:%s directive (known verbs: lockorder, holds, prepublish, resource, codecsym, golife, walorder, walsink, lockfree, hotpath, verified)", verb)
	}
}

// parseCapture parses "capture=Type.Method mutate=Type.Method".
func (d *directives) parseCapture(arg string, pos token.Pos) error {
	pair := capturePair{pos: pos}
	for _, kv := range strings.Fields(arg) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" || !strings.Contains(val, ".") {
			return fmt.Errorf("//bess:walorder: bad clause %q (want capture=T.M mutate=T.M)", kv)
		}
		switch key {
		case "capture":
			pair.capture = val
		case "mutate":
			pair.mutate = val
		default:
			return fmt.Errorf("//bess:walorder: unknown clause %q (want capture= or mutate=)", key)
		}
	}
	if pair.capture == "" || pair.mutate == "" {
		return fmt.Errorf("//bess:walorder: capture= and mutate= are both required")
	}
	d.walcaptures = append(d.walcaptures, pair)
	return nil
}

func (d *directives) parseOrder(spec string, pos token.Pos) error {
	if len(d.orderSeen) > 0 {
		return fmt.Errorf("duplicate //bess:lockorder directive")
	}
	d.orderSrc = pos
	for i, part := range strings.Split(spec, "<") {
		name := strings.TrimSpace(part)
		if name == "" || !strings.Contains(name, ".") {
			return fmt.Errorf("//bess:lockorder: bad lock class %q (want Type.field)", name)
		}
		if _, dup := d.rank[name]; dup {
			return fmt.Errorf("//bess:lockorder: %s listed twice", name)
		}
		d.rank[name] = i + 1
		d.orderSeen = append(d.orderSeen, name)
	}
	return nil
}

func (d *directives) collectFunc(p *pkg, fn *ast.FuncDecl) {
	if fn.Doc == nil {
		return
	}
	obj, _ := p.info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "bess:holds "); ok {
			d.holds[obj] = strings.TrimSpace(rest)
		}
		if text == "bess:prepublish" {
			d.prepublish[obj] = true
		}
		if text == "bess:lockfree" {
			d.lockfreeRoots[obj] = true
		}
		if text == "bess:hotpath" {
			d.hotpath[obj] = true
		}
		if text == "bess:verified" {
			d.verified[obj] = true
		}
	}
}

// collectGuarded records `// guarded by <mu>` field annotations. The marker
// may appear in the field's trailing line comment or its doc comment, and
// may be followed by prose after a separator ("guarded by mu; ...").
func (d *directives) collectGuarded(p *pkg, st *ast.StructType) {
	for _, field := range st.Fields.List {
		mu := guardedMu(field.Comment)
		if mu == "" {
			mu = guardedMu(field.Doc)
		}
		if mu == "" {
			continue
		}
		for _, name := range field.Names {
			if v, ok := p.info.Defs[name].(*types.Var); ok {
				d.guarded[v] = mu
			}
		}
	}
}

// parseResource parses a //bess:resource directive. acquire/release accept
// a package function name ("getBuf") or "Type.Method" ("Pool.Acquire"),
// resolved in the directive's own package. sink lists comma-separated
// "Type.field" struct fields that may legitimately hold the resource.
func (d *directives) parseResource(p *pkg, spec string, pos token.Pos) error {
	r := &resourceDecl{sinks: make(map[*types.Var]bool), pos: pos}
	for _, kv := range strings.Fields(spec) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return fmt.Errorf("//bess:resource: bad clause %q (want key=value)", kv)
		}
		switch key {
		case "acquire", "release":
			fn, err := resolveFunc(p, val)
			if err != nil {
				return fmt.Errorf("//bess:resource %s=%s: %w", key, val, err)
			}
			if key == "acquire" {
				r.acquire = fn
			} else {
				r.release = fn
			}
		case "sink":
			for _, s := range strings.Split(val, ",") {
				fv, err := resolveField(p, s)
				if err != nil {
					return fmt.Errorf("//bess:resource sink=%s: %w", s, err)
				}
				r.sinks[fv] = true
			}
		case "mode":
			switch val {
			case "owned":
			case "pinned":
				r.pinned = true
			default:
				return fmt.Errorf("//bess:resource: unknown mode %q", val)
			}
		default:
			return fmt.Errorf("//bess:resource: unknown clause %q", key)
		}
	}
	if r.acquire == nil || r.release == nil {
		return fmt.Errorf("//bess:resource: both acquire= and release= are required")
	}
	// The resource identity: normally the acquire's first non-error result.
	// When the acquire returns nothing trackable, fall back to keying the
	// release by its first argument expression (mmap-style pairs).
	if sig, ok := r.acquire.Type().(*types.Signature); ok {
		trackable := false
		for i := 0; i < sig.Results().Len(); i++ {
			if !isErrorType(sig.Results().At(i).Type()) {
				trackable = true
				break
			}
		}
		r.argKeyed = !trackable
	}
	r.name = r.acquire.Name() + "/" + r.release.Name()
	d.resources = append(d.resources, r)
	return nil
}

// resolveFunc looks up "name" or "Type.Method" in the package scope.
func resolveFunc(p *pkg, name string) (*types.Func, error) {
	scope := p.tpkg.Scope()
	if typ, method, ok := strings.Cut(name, "."); ok {
		obj := scope.Lookup(typ)
		tn, _ := obj.(*types.TypeName)
		if tn == nil {
			return nil, fmt.Errorf("type %s not found in package %s", typ, p.path)
		}
		named, _ := tn.Type().(*types.Named)
		if named == nil {
			return nil, fmt.Errorf("%s is not a named type", typ)
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				return m, nil
			}
		}
		return nil, fmt.Errorf("method %s not found on %s", method, typ)
	}
	if fn, ok := scope.Lookup(name).(*types.Func); ok {
		return fn, nil
	}
	return nil, fmt.Errorf("function %s not found in package %s", name, p.path)
}

// resolveField looks up a "Type.field" struct field in the package scope.
func resolveField(p *pkg, name string) (*types.Var, error) {
	typ, field, ok := strings.Cut(name, ".")
	if !ok {
		return nil, fmt.Errorf("want Type.field, got %q", name)
	}
	tn, _ := p.tpkg.Scope().Lookup(typ).(*types.TypeName)
	if tn == nil {
		return nil, fmt.Errorf("type %s not found in package %s", typ, p.path)
	}
	st, _ := tn.Type().Underlying().(*types.Struct)
	if st == nil {
		return nil, fmt.Errorf("%s is not a struct type", typ)
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == field {
			return f, nil
		}
	}
	return nil, fmt.Errorf("field %s not found on %s", field, typ)
}

func guardedMu(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		idx := strings.Index(text, "guarded by ")
		if idx < 0 {
			continue
		}
		rest := text[idx+len("guarded by "):]
		// The mutex name ends at the first separator or space.
		end := strings.IndexFunc(rest, func(r rune) bool {
			return r == ';' || r == ',' || r == ' ' || r == '.' || r == ':'
		})
		if end >= 0 {
			rest = rest[:end]
		}
		if rest != "" {
			return rest
		}
	}
	return ""
}
