package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poollife tracks the acquire/release pairs declared by //bess:resource
// through every function, path-sensitively (the same branch-forking shape as
// the lock-flow walker) and interprocedurally (callee parameter summaries:
// a callee that forwards its parameter to the release function releases it
// for the caller; one that stores or returns it takes ownership).
//
// Owned mode (default) checks, per path:
//   - use-after-release and double-release,
//   - release missing on one branch of a merge (the error-path-leak class),
//   - a live value at a return or the end of the function (leak),
//   - escapes into struct fields (other than declared sinks), composite
//     literals, channels, and goroutines.
//
// Pinned mode (segment pins, mmap mappings) checks only double-release and
// use-after-release: pins legitimately outlive the acquiring function.
//
// Known holes, on purpose: values captured by closures are not tracked (the
// closure body is walked with a fresh state), and interface calls are
// borrows. The analyzer is tuned to stay false-positive-free on real code.

type resStatus int

const (
	resLive     resStatus = iota
	resReleased           // released; further use or release is a bug
	resGone               // ownership transferred (sink, consume, return)
)

// resSlot is one tracked resource value on one path.
type resSlot struct {
	decl     *resourceDecl
	names    map[string]bool // aliases currently holding the value
	status   resStatus
	deferred bool // a deferred release covers every exit
	acqPos   token.Pos
	relPos   token.Pos
	reported bool // one use-after-release report per slot
}

func (s *resSlot) copy() *resSlot {
	c := *s
	c.names = make(map[string]bool, len(s.names))
	for k := range s.names {
		c.names[k] = true
	}
	return &c
}

type rstate struct {
	slots   []*resSlot
	relKeys map[string]token.Pos // arg-keyed pairs: released key -> where
}

func newRstate() *rstate {
	return &rstate{relKeys: make(map[string]token.Pos)}
}

func (st *rstate) copy() *rstate {
	c := &rstate{
		slots:   make([]*resSlot, len(st.slots)),
		relKeys: make(map[string]token.Pos, len(st.relKeys)),
	}
	for i, s := range st.slots {
		c.slots[i] = s.copy()
	}
	for k, v := range st.relKeys {
		c.relKeys[k] = v
	}
	return c
}

func (st *rstate) find(name string) *resSlot {
	if name == "" || name == "_" {
		return nil
	}
	for i := len(st.slots) - 1; i >= 0; i-- {
		if st.slots[i].names[name] {
			return st.slots[i]
		}
	}
	return nil
}

// dropName severs an alias: the variable was reassigned to something else.
func (st *rstate) dropName(name string) {
	for _, s := range st.slots {
		delete(s.names, name)
	}
}

// paramEffect classifies what a callee does with one parameter.
type paramEffect int

const (
	effBorrow  paramEffect = iota // reads it; caller keeps ownership
	effRelease                    // forwards it to the release function
	effConsume                    // stores or returns it; callee owns it now
)

type funcDef struct {
	decl *ast.FuncDecl
	p    *pkg
}

// poolAnalysis is the shared interprocedural context.
type poolAnalysis struct {
	dirs *directives
	r    *reporter
	fset *token.FileSet

	defs map[*types.Func]*funcDef

	effects    map[*types.Func][]paramEffect
	effectsWIP map[*types.Func]bool
	wrappers   map[*types.Func]*resourceDecl
	wrapperWIP map[*types.Func]bool

	seen map[string]bool // finding dedupe: file:line
}

func analyzePoolLife(pkgs []*pkg, dirs *directives, r *reporter) {
	if len(dirs.resources) == 0 {
		return
	}
	a := &poolAnalysis{
		dirs:       dirs,
		r:          r,
		defs:       make(map[*types.Func]*funcDef),
		effects:    make(map[*types.Func][]paramEffect),
		effectsWIP: make(map[*types.Func]bool),
		wrappers:   make(map[*types.Func]*resourceDecl),
		wrapperWIP: make(map[*types.Func]bool),
		seen:       make(map[string]bool),
	}
	for _, p := range pkgs {
		a.fset = p.fset
		for _, f := range p.files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := p.info.Defs[fd.Name].(*types.Func); ok {
						a.defs[obj] = &funcDef{decl: fd, p: p}
					}
				}
			}
		}
	}
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.info.Defs[fd.Name].(*types.Func)
				if obj != nil && a.isPrimitive(obj) {
					continue // the acquire/release functions themselves
				}
				w := &rwalk{a: a, p: p}
				st := newRstate()
				if !w.walkBlock(fd.Body, st) {
					w.exitCheck(fd.Body.End(), st)
				}
			}
		}
	}
}

// isPrimitive reports whether fn is a declared acquire or release function.
func (a *poolAnalysis) isPrimitive(fn *types.Func) bool {
	for _, d := range a.dirs.resources {
		if fn == d.acquire || fn == d.release {
			return true
		}
	}
	return false
}

func (a *poolAnalysis) acquireDecl(fn *types.Func) *resourceDecl {
	for _, d := range a.dirs.resources {
		if fn == d.acquire && !d.argKeyed {
			return d
		}
	}
	return a.wrapper(fn)
}

func (a *poolAnalysis) releaseDecl(fn *types.Func) *resourceDecl {
	for _, d := range a.dirs.resources {
		if fn == d.release {
			return d
		}
	}
	return nil
}

// wrapper reports whether fn returns a freshly acquired resource as its
// first result (newBuf-style constructor wrappers). Memoized; cycles break
// to nil.
func (a *poolAnalysis) wrapper(fn *types.Func) *resourceDecl {
	if fn == nil {
		return nil
	}
	if d, ok := a.wrappers[fn]; ok {
		return d
	}
	if a.wrapperWIP[fn] {
		return nil
	}
	def := a.defs[fn]
	if def == nil || a.isPrimitive(fn) {
		a.wrappers[fn] = nil
		return nil
	}
	a.wrapperWIP[fn] = true
	defer delete(a.wrapperWIP, fn)

	acquired := map[types.Object]*resourceDecl{}
	var found *resourceDecl
	ast.Inspect(def.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					if d := a.acquireDecl(calleeOf(def.p, call)); d != nil && len(s.Lhs) > 0 {
						if id, ok := s.Lhs[0].(*ast.Ident); ok {
							if obj := def.p.info.Defs[id]; obj != nil {
								acquired[obj] = d
							} else if obj := def.p.info.Uses[id]; obj != nil {
								acquired[obj] = d
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			if len(s.Results) == 0 {
				return true
			}
			switch e := s.Results[0].(type) {
			case *ast.CallExpr:
				if d := a.acquireDecl(calleeOf(def.p, e)); d != nil {
					found = d
				}
			case *ast.Ident:
				if d := acquired[def.p.info.Uses[e]]; d != nil {
					found = d
				}
			}
		}
		return true
	})
	a.wrappers[fn] = found
	return found
}

// paramEffects computes per-parameter summaries for a module function.
// Missing bodies (stdlib, interfaces) yield nil: every parameter borrows.
func (a *poolAnalysis) paramEffects(fn *types.Func) []paramEffect {
	if fn == nil {
		return nil
	}
	if eff, ok := a.effects[fn]; ok {
		return eff
	}
	if a.effectsWIP[fn] {
		return nil
	}
	def := a.defs[fn]
	if def == nil || a.isPrimitive(fn) {
		a.effects[fn] = nil
		return nil
	}
	a.effectsWIP[fn] = true
	defer delete(a.effectsWIP, fn)

	sig := fn.Type().(*types.Signature)
	eff := make([]paramEffect, sig.Params().Len())
	paramIdx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	upgrade := func(i int, e paramEffect) {
		if i >= 0 && i < len(eff) && e > eff[i] {
			eff[i] = e
		}
	}
	classify := func(e ast.Expr) int {
		if obj := baseIdentObj(def.p, e); obj != nil {
			if i, ok := paramIdx[obj]; ok {
				return i
			}
		}
		return -1
	}
	ast.Inspect(def.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			callee := calleeOf(def.p, s)
			rel := a.releaseDecl(callee)
			var sub []paramEffect
			if rel == nil {
				sub = a.paramEffects(callee)
			}
			for i, arg := range s.Args {
				pi := classify(arg)
				if pi < 0 {
					continue
				}
				switch {
				case rel != nil && i == 0 && !rel.argKeyed:
					upgrade(pi, effRelease)
				case i < len(sub) && sub[i] == effRelease:
					upgrade(pi, effRelease)
				case i < len(sub) && sub[i] == effConsume:
					upgrade(pi, effConsume)
				}
			}
		case *ast.AssignStmt:
			for li, l := range s.Lhs {
				switch l.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if li < len(s.Rhs) {
						if pi := classify(s.Rhs[li]); pi >= 0 {
							upgrade(pi, effConsume)
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if pi := classify(r); pi >= 0 {
					upgrade(pi, effConsume)
				}
			}
		case *ast.SendStmt:
			if pi := classify(s.Value); pi >= 0 {
				upgrade(pi, effConsume)
			}
		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				if pi := classify(arg); pi >= 0 {
					upgrade(pi, effConsume)
				}
			}
		}
		return true
	})
	a.effects[fn] = eff
	return eff
}

func (a *poolAnalysis) reportOnce(pos token.Pos, format string, args ...any) {
	p := a.fset.Position(pos)
	key := p.Filename + ":" + itoa(p.Line)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.r.report(pos, "poollife", format, args...)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// calleeOf resolves a call expression to its *types.Func, if static.
func calleeOf(p *pkg, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// baseIdentObj unwraps &x, *x, (x), x[i], x[:] down to x's object.
func baseIdentObj(p *pkg, e ast.Expr) types.Object {
	for {
		switch n := e.(type) {
		case *ast.Ident:
			if o := p.info.Uses[n]; o != nil {
				return o
			}
			return p.info.Defs[n]
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return nil
			}
			e = n.X
		case *ast.StarExpr:
			e = n.X
		case *ast.ParenExpr:
			e = n.X
		case *ast.SliceExpr:
			e = n.X
		case *ast.IndexExpr:
			e = n.X
		default:
			return nil
		}
	}
}

// baseIdentName unwraps the same forms down to the identifier's name.
func baseIdentName(e ast.Expr) string {
	for {
		switch n := e.(type) {
		case *ast.Ident:
			return n.Name
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return ""
			}
			e = n.X
		case *ast.StarExpr:
			e = n.X
		case *ast.ParenExpr:
			e = n.X
		case *ast.SliceExpr:
			e = n.X
		case *ast.IndexExpr:
			e = n.X
		default:
			return ""
		}
	}
}

// rwalk walks one function body, forking state at branches.
type rwalk struct {
	a *poolAnalysis
	p *pkg
}

func (w *rwalk) walkBlock(b *ast.BlockStmt, st *rstate) bool {
	for _, s := range b.List {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

// exitCheck reports owned values still live at a function exit.
func (w *rwalk) exitCheck(pos token.Pos, st *rstate) {
	for _, s := range st.slots {
		if s.status == resLive && !s.deferred && !s.decl.pinned {
			w.a.reportOnce(pos,
				"%s value acquired at %s is not released on this path (missing %s)",
				s.decl.name, w.a.fset.Position(s.acqPos), s.decl.release.Name())
		}
	}
}

// useCheck flags a read of a released value.
func (w *rwalk) useCheck(name string, pos token.Pos, st *rstate) {
	s := st.find(name)
	if s == nil || s.reported || s.status != resReleased {
		return
	}
	s.reported = true
	w.a.reportOnce(pos,
		"use of %s value %q after it was released at %s",
		s.decl.name, name, w.a.fset.Position(s.relPos))
}

// escape reports an owned value leaking somewhere the pool cannot see.
func (w *rwalk) escape(s *resSlot, pos token.Pos, how string) {
	if s.decl.pinned {
		s.status = resGone
		return
	}
	w.a.reportOnce(pos,
		"%s value escapes into %s; the pool can no longer recycle it safely",
		s.decl.name, how)
	s.status = resGone
}

// applyRelease marks a slot released, reporting double releases.
func (w *rwalk) applyRelease(s *resSlot, pos token.Pos, st *rstate) {
	switch {
	case s.status == resReleased:
		w.a.reportOnce(pos,
			"%s value released again; first released at %s",
			s.decl.name, w.a.fset.Position(s.relPos))
	case s.deferred:
		w.a.reportOnce(pos,
			"%s value released explicitly although a deferred release already covers it",
			s.decl.name)
	default:
		s.status = resReleased
		s.relPos = pos
	}
}

// scanExpr walks an expression, applying call effects and use checks.
// retain names a variable whose ownership round-trips through the call on
// this assignment (`*bp = appendFrame((*bp)[:0], f)`): it is borrowed, not
// consumed.
func (w *rwalk) scanExpr(e ast.Expr, st *rstate, retain string) {
	switch n := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		w.scanCall(n, st, retain, false)
	case *ast.Ident:
		w.useCheck(n.Name, n.Pos(), st)
	case *ast.UnaryExpr:
		w.scanExpr(n.X, st, retain)
	case *ast.StarExpr:
		w.scanExpr(n.X, st, retain)
	case *ast.ParenExpr:
		w.scanExpr(n.X, st, retain)
	case *ast.SelectorExpr:
		w.scanExpr(n.X, st, retain)
	case *ast.IndexExpr:
		w.scanExpr(n.X, st, retain)
		w.scanExpr(n.Index, st, retain)
	case *ast.SliceExpr:
		w.scanExpr(n.X, st, retain)
		w.scanExpr(n.Low, st, retain)
		w.scanExpr(n.High, st, retain)
		w.scanExpr(n.Max, st, retain)
	case *ast.BinaryExpr:
		w.scanExpr(n.X, st, retain)
		w.scanExpr(n.Y, st, retain)
	case *ast.TypeAssertExpr:
		w.scanExpr(n.X, st, retain)
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if s := st.find(baseIdentName(v)); s != nil && s.status == resLive {
				w.escape(s, v.Pos(), "a composite literal")
				continue
			}
			w.scanExpr(v, st, retain)
		}
	case *ast.FuncLit:
		// Closures run in their own dynamic context; captured resources are
		// out of scope for this analysis (documented hole).
		sub := newRstate()
		if !w.walkBlock(n.Body, sub) {
			w.exitCheck(n.Body.End(), sub)
		}
	}
}

// scanCall applies acquire/release/consume semantics of one call.
// topAssigned is true when the call is the sole RHS of an assignment (its
// acquired result is tracked by the caller of scanCall).
func (w *rwalk) scanCall(call *ast.CallExpr, st *rstate, retain string, topAssigned bool) {
	callee := calleeOf(w.p, call)
	relDecl := w.a.releaseDecl(callee)
	var sub []paramEffect
	if relDecl == nil {
		sub = w.a.paramEffects(callee)
	}
	for i, arg := range call.Args {
		name := baseIdentName(arg)
		spread := call.Ellipsis.IsValid() && i == len(call.Args)-1
		s := st.find(name)
		switch {
		case relDecl != nil && i == 0 && !relDecl.argKeyed:
			if s != nil {
				w.applyRelease(s, call.Pos(), st)
				continue
			}
			// Releasing an untracked value: nothing to say (the walker loses
			// track through consuming helpers by design).
		case relDecl != nil && i == 0 && relDecl.argKeyed:
			key := render(arg)
			if key != "" {
				if prev, ok := st.relKeys[key]; ok {
					w.a.reportOnce(call.Pos(),
						"%s released twice for %q; first released at %s",
						relDecl.name, key, w.a.fset.Position(prev))
				} else {
					st.relKeys[key] = call.Pos()
				}
			}
		case s != nil && s.status == resLive && !spread && name != retain:
			eff := effBorrow
			if i < len(sub) {
				eff = sub[i]
			}
			switch eff {
			case effRelease:
				w.applyRelease(s, call.Pos(), st)
				continue
			case effConsume:
				s.status = resGone
				continue
			}
		}
		w.scanExpr(arg, st, retain)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.scanExpr(sel.X, st, retain)
	}
	// An acquire whose result is discarded leaks immediately.
	if !topAssigned {
		if d := w.a.acquireDecl(callee); d != nil && !d.pinned {
			w.a.reportOnce(call.Pos(),
				"result of %s is discarded; the %s value can never be released",
				d.acquire.Name(), d.name)
		}
	}
}

func (w *rwalk) walkStmt(s ast.Stmt, st *rstate) bool {
	switch n := s.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok && callTerminatesStatic(call) {
			w.scanExpr(n.X, st, "")
			return true
		}
		w.scanExpr(n.X, st, "")
	case *ast.AssignStmt:
		w.walkAssign(n, st)
	case *ast.IncDecStmt:
		w.scanExpr(n.X, st, "")
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, st, "")
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.walkDefer(n, st)
	case *ast.GoStmt:
		for _, arg := range n.Call.Args {
			if sl := st.find(baseIdentName(arg)); sl != nil && sl.status == resLive {
				w.escape(sl, arg.Pos(), "a goroutine")
				continue
			}
			w.scanExpr(arg, st, "")
		}
		if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
			sub := newRstate()
			if !w.walkBlock(fl.Body, sub) {
				w.exitCheck(fl.Body.End(), sub)
			}
		}
	case *ast.SendStmt:
		w.scanExpr(n.Chan, st, "")
		if sl := st.find(baseIdentName(n.Value)); sl != nil && sl.status == resLive {
			w.escape(sl, n.Value.Pos(), "a channel")
		} else {
			w.scanExpr(n.Value, st, "")
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if sl := st.find(baseIdentName(r)); sl != nil && sl.status == resLive {
				sl.status = resGone // ownership moves to the caller
				continue
			}
			if call, ok := r.(*ast.CallExpr); ok {
				// A returned acquire result transfers to the caller.
				w.scanCall(call, st, "", true)
				continue
			}
			w.scanExpr(r, st, "")
		}
		w.exitCheck(n.Pos(), st)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkBlock(n, st)
	case *ast.IfStmt:
		return w.walkIf(n, st)
	case *ast.ForStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.scanExpr(n.Cond, st, "")
		w.walkLoopBody(n.Body, st)
	case *ast.RangeStmt:
		w.scanExpr(n.X, st, "")
		w.walkLoopBody(n.Body, st)
	case *ast.SwitchStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.scanExpr(n.Tag, st, "")
		return w.walkCases(n.Body, st, true)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.walkStmt(n.Assign, st)
		return w.walkCases(n.Body, st, true)
	case *ast.SelectStmt:
		return w.walkCases(n.Body, st, false)
	case *ast.LabeledStmt:
		return w.walkStmt(n.Stmt, st)
	}
	return false
}

// callTerminatesStatic mirrors flow.callTerminates without a receiver.
func callTerminatesStatic(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Exit" || name == "Goexit" || len(name) > 5 && name[:5] == "Fatal" {
			if id, ok := fun.X.(*ast.Ident); ok {
				switch id.Name {
				case "os", "runtime", "log", "t", "b", "tb":
					return true
				}
			}
		}
	}
	return false
}

func (w *rwalk) walkAssign(n *ast.AssignStmt, st *rstate) {
	// Ownership round-trip: `x = f(x, ...)` / `*x = f((*x)[:0], ...)` keeps
	// the caller the owner even when f's summary says consume.
	retain := ""
	if len(n.Rhs) == 1 {
		if _, ok := n.Rhs[0].(*ast.CallExpr); ok && len(n.Lhs) > 0 {
			if name := baseIdentName(n.Lhs[0]); name != "" && st.find(name) != nil {
				retain = name
			}
		}
	}

	// Scan the RHS with call effects applied.
	for _, r := range n.Rhs {
		if call, ok := r.(*ast.CallExpr); ok && len(n.Rhs) == 1 {
			w.scanCall(call, st, retain, true)
			continue
		}
		w.scanExpr(r, st, retain)
	}

	// LHS bookkeeping, done before new tracking so `bp = getBuf()` first
	// severs the old alias, then tracks the new value.
	for li, l := range n.Lhs {
		switch lhs := l.(type) {
		case *ast.Ident:
			if lhs.Name != "_" {
				// Keep the alias when the RHS round-trips ownership.
				if lhs.Name != retain {
					st.dropName(lhs.Name)
				}
			}
		case *ast.SelectorExpr:
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[li]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0]
			}
			if sl := st.find(baseIdentName(rhs)); sl != nil && sl.status == resLive {
				if fv := w.fieldOf(lhs); fv != nil && sl.decl.sinks[fv] {
					sl.status = resGone // declared sink: ownership handed over
				} else {
					w.escape(sl, n.Pos(), "struct field "+render(lhs))
				}
				continue
			}
			w.scanExpr(lhs.X, st, "")
		case *ast.IndexExpr:
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[li]
			}
			if sl := st.find(baseIdentName(rhs)); sl != nil && sl.status == resLive {
				w.escape(sl, n.Pos(), "a map or slice element")
				continue
			}
			w.scanExpr(lhs.X, st, "")
			w.scanExpr(lhs.Index, st, "")
		case *ast.StarExpr:
			// Writing through the pointer mutates the resource, not the
			// tracking.
		}
	}

	// New tracking from the RHS.
	if len(n.Rhs) != 1 || len(n.Lhs) == 0 {
		return
	}
	lhs0, ok := n.Lhs[0].(*ast.Ident)
	if !ok || lhs0.Name == "_" {
		return
	}
	switch r := n.Rhs[0].(type) {
	case *ast.CallExpr:
		if d := w.a.acquireDecl(calleeOf(w.p, r)); d != nil {
			st.slots = append(st.slots, &resSlot{
				decl:   d,
				names:  map[string]bool{lhs0.Name: true},
				acqPos: n.Pos(),
			})
		}
	case *ast.SelectorExpr:
		// Reading a declared sink re-establishes ownership (the flush path
		// detaches the coalescing buffer and must recycle it).
		if fv := w.fieldOf(r); fv != nil {
			for _, d := range w.a.dirs.resources {
				if d.sinks[fv] {
					st.slots = append(st.slots, &resSlot{
						decl:   d,
						names:  map[string]bool{lhs0.Name: true},
						acqPos: n.Pos(),
					})
					break
				}
			}
		}
	case *ast.Ident:
		if sl := st.find(r.Name); sl != nil {
			sl.names[lhs0.Name] = true
		}
	}
}

func (w *rwalk) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := w.p.info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

func (w *rwalk) walkDefer(n *ast.DeferStmt, st *rstate) {
	callee := calleeOf(w.p, n.Call)
	relDecl := w.a.releaseDecl(callee)
	if relDecl == nil {
		if eff := w.a.paramEffects(callee); len(eff) > 0 {
			for i, arg := range n.Call.Args {
				if i < len(eff) && eff[i] == effRelease {
					if sl := st.find(baseIdentName(arg)); sl != nil {
						w.markDeferred(sl, n.Pos())
						return
					}
				}
			}
		}
		if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure that releases counts as a deferred release.
			ast.Inspect(fl.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if rd := w.a.releaseDecl(calleeOf(w.p, call)); rd != nil && len(call.Args) > 0 {
					if sl := st.find(baseIdentName(call.Args[0])); sl != nil {
						w.markDeferred(sl, call.Pos())
					}
				}
				return true
			})
			return
		}
		for _, arg := range n.Call.Args {
			w.scanExpr(arg, st, "")
		}
		return
	}
	if relDecl.argKeyed {
		return // deferred Unmap: nothing path-sensitive to track
	}
	if len(n.Call.Args) > 0 {
		if sl := st.find(baseIdentName(n.Call.Args[0])); sl != nil {
			w.markDeferred(sl, n.Pos())
		}
	}
}

func (w *rwalk) markDeferred(sl *resSlot, pos token.Pos) {
	if sl.status == resReleased {
		w.a.reportOnce(pos,
			"%s value already released at %s; the deferred release will run it again",
			sl.decl.name, w.a.fset.Position(sl.relPos))
		return
	}
	sl.deferred = true
}

func (w *rwalk) walkIf(n *ast.IfStmt, st *rstate) bool {
	if n.Init != nil {
		w.walkStmt(n.Init, st)
	}
	w.scanExpr(n.Cond, st, "")
	thenSt := st.copy()
	elseSt := st.copy()
	tTerm := w.walkBlock(n.Body, thenSt)
	eTerm := false
	if n.Else != nil {
		eTerm = w.walkStmt(n.Else, elseSt)
	}
	switch {
	case tTerm && eTerm:
		return true
	case tTerm:
		*st = *elseSt
	case eTerm:
		*st = *thenSt
	default:
		*st = *w.mergeStates(n.End(), thenSt, elseSt)
	}
	return false
}

// mergeStates joins two branch states, reporting release imbalances: a value
// released on one path but live on the other is the release-missing-on-
// error-path bug class.
func (w *rwalk) mergeStates(pos token.Pos, a, b *rstate) *rstate {
	out := newRstate()
	matched := map[*resSlot]bool{}
	for _, sa := range a.slots {
		var sb *resSlot
		for _, cand := range b.slots {
			if cand.acqPos == sa.acqPos {
				sb = cand
				break
			}
		}
		if sb == nil {
			w.mergeLone(pos, sa, out)
			continue
		}
		matched[sb] = true
		m := sa.copy()
		for k := range sb.names {
			m.names[k] = true
		}
		m.deferred = sa.deferred && sb.deferred
		switch {
		case sa.status == sb.status:
			// agree
		case (sa.status == resLive && sb.status == resReleased) ||
			(sa.status == resReleased && sb.status == resLive):
			if !sa.decl.pinned && !m.deferred {
				w.a.reportOnce(pos,
					"%s value released on one branch path but not the other reaching this point",
					sa.decl.name)
			}
			m.status = resReleased
			m.relPos = sa.relPos
			if sb.status == resReleased {
				m.relPos = sb.relPos
			}
		default:
			// live vs gone, released vs gone: ownership left on one path;
			// stop tracking rather than guess.
			m.status = resGone
		}
		out.slots = append(out.slots, m)
	}
	for _, sb := range b.slots {
		if !matched[sb] {
			w.mergeLone(pos, sb, out)
		}
	}
	// Arg-keyed releases merge by intersection: only keys released on every
	// path count toward double-release detection.
	for k, p := range a.relKeys {
		if _, ok := b.relKeys[k]; ok {
			out.relKeys[k] = p
		}
	}
	return out
}

// mergeLone handles a slot acquired inside only one branch.
func (w *rwalk) mergeLone(pos token.Pos, s *resSlot, out *rstate) {
	if s.status == resLive && !s.deferred && !s.decl.pinned {
		w.a.reportOnce(pos,
			"%s value acquired at %s inside a branch is not released before the merge",
			s.decl.name, w.a.fset.Position(s.acqPos))
		return
	}
	if s.status == resLive {
		out.slots = append(out.slots, s.copy())
	}
}

// walkLoopBody walks a loop body once on a forked state, then reports owned
// values acquired inside the body that are still live when it ends, and
// adopts releases of pre-existing values (one-or-more-iterations view).
func (w *rwalk) walkLoopBody(body *ast.BlockStmt, st *rstate) {
	sub := st.copy()
	term := w.walkBlock(body, sub)
	if !term {
		for _, s := range sub.slots {
			pre := false
			for _, p := range st.slots {
				if p.acqPos == s.acqPos {
					pre = true
					break
				}
			}
			if !pre && s.status == resLive && !s.deferred && !s.decl.pinned {
				w.a.reportOnce(body.End(),
					"%s value acquired at %s is not released by the end of the loop body (leaks every iteration)",
					s.decl.name, w.a.fset.Position(s.acqPos))
			}
		}
	}
	// Pre-existing values released or transferred inside the body stay that
	// way (assume the loop runs; the zero-iteration leak is out of scope).
	for _, p := range st.slots {
		for _, s := range sub.slots {
			if s.acqPos == p.acqPos && s.status != resLive {
				p.status = s.status
				p.relPos = s.relPos
				break
			}
		}
	}
}

func (w *rwalk) walkCases(body *ast.BlockStmt, st *rstate, implicitSkip bool) bool {
	var survivors []*rstate
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, st, "")
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, st.copy())
			} else {
				hasDefault = true
			}
			stmts = c.Body
		}
		cst := st.copy()
		term := false
		for _, s := range stmts {
			if w.walkStmt(s, cst) {
				term = true
				break
			}
		}
		if !term {
			survivors = append(survivors, cst)
		}
	}
	if implicitSkip && !hasDefault {
		survivors = append(survivors, st.copy())
	}
	if len(survivors) == 0 {
		return len(body.List) > 0
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged = w.mergeStates(body.End(), merged, s)
	}
	*st = *merged
	return false
}
