package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// codecsym verifies that hand-written binary codec pairs stay symmetric: for
// every AppendXxx/EncodeXxx function in a //bess:codecsym package there must
// be a DecodeXxx counterpart, and the sequence of fields the encoder writes
// must agree — in count, order, and width — with the sequence the decoder
// reads. Editing one side without the other desyncs the wire format; this
// analyzer fails the build before a cross-version test can.
//
// Both sides are abstracted to the same little op language:
//
//	u8 u16 u32 u64   fixed-width big-endian fields
//	bytes            a variable-length byte run (append(b, s...) / rest[:n])
//	rep(n){...}      a repeated group (loop); n = -1 when the count is dynamic
//	call(f)          delegation to another codec function (expanded before
//	                 comparison, so one side may inline what the other calls)
//
// Encoders are walked tracking the builder slice (first []byte parameter or
// a make([]byte, ...) local); decoders tracking the cursor (first []byte
// parameter and every continuation slice rest := b[k:] derived from it).
// Branches fork the walk; the longest path is canonical and every other path
// must be a prefix of it (early error bails), unrolling reps as needed.
// Reads of the same cursor bytes twice (b[0] checked then returned) count
// once. Functions whose paths genuinely diverge or explode past a cap are
// skipped rather than guessed at.

type opKind int

const (
	opU8 opKind = iota
	opU16
	opU32
	opU64
	opBytes
	opRep
	opCall
)

type op struct {
	kind  opKind
	fn    *types.Func // opCall: the codec function delegated to
	count int         // opRep: iteration count, -1 if dynamic
	body  []op        // opRep
}

const maxCodecPaths = 256

// codecFn is one Append*/Encode*/Decode* function in an opted-in package.
type codecFn struct {
	key  string // lowercased name suffix: pair identity
	enc  bool
	fn   *types.Func
	decl *ast.FuncDecl
	p    *pkg

	seq          []op
	ok           bool // extraction succeeded and paths were consistent
	cursorResult int  // decoders: result index returning the continuation cursor, -1 if none
}

// codecPair joins the two sides of one key.
type codecPair struct {
	key      string
	enc, dec *codecFn
}

func analyzeCodecSym(pkgs []*pkg, dirs *directives, r *reporter) {
	fns := gatherCodecs(pkgs, dirs)
	if len(fns) == 0 {
		return
	}
	byFunc := map[*types.Func]*codecFn{}
	for _, c := range fns {
		byFunc[c.fn] = c
	}
	// Cursor-result indexes first: extraction of a caller needs its helper
	// callees' result shapes regardless of iteration order.
	for _, c := range fns {
		c.cursorResult = -1
		if !c.enc {
			c.cursorResult = findCursorResult(c)
		}
	}
	for _, c := range fns {
		extractSeq(c, byFunc)
	}
	for _, pr := range pairCodecs(fns) {
		switch {
		case pr.enc == nil:
			r.report(pr.dec.decl.Name.Pos(), "codecsym",
				"%s has no matching encoder (Append%s/Encode%s) in this package",
				pr.dec.fn.Name(), exportedKey(pr.dec), exportedKey(pr.dec))
		case pr.dec == nil:
			r.report(pr.enc.decl.Name.Pos(), "codecsym",
				"%s has no matching decoder (Decode%s) in this package",
				pr.enc.fn.Name(), exportedKey(pr.enc))
		default:
			if !pr.enc.ok || !pr.dec.ok {
				continue // extraction bailed; nothing trustworthy to compare
			}
			e := expandSeq(pr.enc.seq, byFunc, true, map[*types.Func]bool{pr.enc.fn: true})
			d := expandSeq(pr.dec.seq, byFunc, false, map[*types.Func]bool{pr.dec.fn: true})
			if e == nil || d == nil {
				continue
			}
			if !seqEq(e, d) {
				r.report(pr.dec.decl.Name.Pos(), "codecsym",
					"codec pair %q out of sync: %s writes [%s] but %s reads [%s]",
					pr.key, pr.enc.fn.Name(), fmtSeq(e), pr.dec.fn.Name(), fmtSeq(d))
			}
		}
	}
}

// gatherCodecs finds every prefix-named codec function in opted-in packages.
func gatherCodecs(pkgs []*pkg, dirs *directives) []*codecFn {
	var out []*codecFn
	for _, p := range pkgs {
		if !dirs.codecsym[p.path] {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv != nil {
					continue
				}
				obj, _ := p.info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key, enc, ok := codecKey(fd.Name.Name)
				if !ok {
					continue
				}
				out = append(out, &codecFn{key: key, enc: enc, fn: obj, decl: fd, p: p})
			}
		}
	}
	return out
}

// codecKey splits a codec function name into (pair key, isEncoder).
func codecKey(name string) (string, bool, bool) {
	for _, pre := range []string{"Append", "Encode", "append", "encode"} {
		if rest, ok := strings.CutPrefix(name, pre); ok && rest != "" {
			return strings.ToLower(rest), true, true
		}
	}
	for _, pre := range []string{"Decode", "decode"} {
		if rest, ok := strings.CutPrefix(name, pre); ok && rest != "" {
			return strings.ToLower(rest), false, true
		}
	}
	return "", false, false
}

// pairCodecs groups codec functions by key, sorted for deterministic output.
func pairCodecs(fns []*codecFn) []*codecPair {
	byKey := map[string]*codecPair{}
	for _, c := range fns {
		pr := byKey[c.key]
		if pr == nil {
			pr = &codecPair{key: c.key}
			byKey[c.key] = pr
		}
		if c.enc {
			if pr.enc == nil {
				pr.enc = c
			}
		} else if pr.dec == nil {
			pr.dec = c
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*codecPair, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// exportedKey renders the pair key with the casing of the function's own
// suffix, for readable messages.
func exportedKey(c *codecFn) string {
	name := c.fn.Name()
	for _, pre := range []string{"Append", "Encode", "append", "encode", "Decode", "decode"} {
		if rest, ok := strings.CutPrefix(name, pre); ok && rest != "" {
			return rest
		}
	}
	return c.key
}

// expandSeq replaces call ops with the callee's expanded sequence for the
// matching side. Returns nil if any callee is unknown or cyclic.
func expandSeq(seq []op, byFunc map[*types.Func]*codecFn, enc bool, visiting map[*types.Func]bool) []op {
	var out []op
	for _, o := range seq {
		switch o.kind {
		case opCall:
			c := byFunc[o.fn]
			if c == nil || !c.ok || visiting[o.fn] {
				return nil
			}
			visiting[o.fn] = true
			sub := expandSeq(c.seq, byFunc, enc, visiting)
			delete(visiting, o.fn)
			if sub == nil {
				return nil
			}
			out = append(out, sub...)
		case opRep:
			body := expandSeq(o.body, byFunc, enc, visiting)
			if body == nil {
				return nil
			}
			out = append(out, op{kind: opRep, count: o.count, body: body})
		default:
			out = append(out, o)
		}
	}
	return out
}

func opEq(a, b op) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case opCall:
		return a.fn == b.fn
	case opRep:
		// -1 (dynamic) matches any count: one side may know the length
		// statically while the other reads it off the wire.
		if a.count != b.count && a.count != -1 && b.count != -1 {
			return false
		}
		return seqEq(a.body, b.body)
	}
	return true
}

func seqEq(a, b []op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !opEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// isPrefixSeq reports whether short is a prefix of long, unrolling rep ops
// in long: an early error bail may return mid-loop, so a path that consumes
// whole bodies plus a proper body prefix and then stops is still consistent.
func isPrefixSeq(short, long []op) bool {
	j := 0
	for i := 0; i < len(short); {
		if j >= len(long) {
			return false
		}
		l := long[j]
		if l.kind == opRep && !(short[i].kind == opRep && opEq(short[i], l)) {
			rem := short[i:]
			if len(l.body) == 0 {
				return len(rem) == 0
			}
			for len(rem) >= len(l.body) && seqEq(rem[:len(l.body)], l.body) {
				rem = rem[len(l.body):]
			}
			return isPrefixSeq(rem, l.body)
		}
		if !opEq(short[i], l) {
			return false
		}
		i++
		j++
	}
	return true
}

func fmtSeq(seq []op) string {
	var b strings.Builder
	for i, o := range seq {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch o.kind {
		case opU8:
			b.WriteString("u8")
		case opU16:
			b.WriteString("u16")
		case opU32:
			b.WriteString("u32")
		case opU64:
			b.WriteString("u64")
		case opBytes:
			b.WriteString("bytes")
		case opCall:
			b.WriteString("call(" + o.fn.Name() + ")")
		case opRep:
			if o.count >= 0 {
				b.WriteString("rep(" + itoa(o.count) + "){" + fmtSeq(o.body) + "}")
			} else {
				b.WriteString("rep(*){" + fmtSeq(o.body) + "}")
			}
		}
	}
	return b.String()
}

// ---- sequence extraction ----

// cpath is one control-flow path through a codec function.
type cpath struct {
	ops  []op
	gens map[*types.Var]int // builder/cursor vars -> generation
	seen map[string]bool    // read-dedupe keys (var#gen@offset)
	term bool               // ended at a return
}

func (c *cpath) copy() *cpath {
	n := &cpath{
		ops:  append([]op(nil), c.ops...),
		gens: make(map[*types.Var]int, len(c.gens)),
		seen: make(map[string]bool, len(c.seen)),
		term: c.term,
	}
	for k, v := range c.gens {
		n.gens[k] = v
	}
	for k := range c.seen {
		n.seen[k] = true
	}
	return n
}

// cwalk extracts the op sequences of one codec function.
type cwalk struct {
	c      *codecFn
	byFunc map[*types.Func]*codecFn
	bad    bool // path explosion or unsupported shape
}

// extractSeq computes c.seq (the canonical op sequence) and c.ok.
func extractSeq(c *codecFn, byFunc map[*types.Func]*codecFn) {
	w := &cwalk{c: c, byFunc: byFunc}
	start := &cpath{gens: map[*types.Var]int{}, seen: map[string]bool{}}
	if v := firstSliceParam(c); v != nil {
		start.gens[v] = 0
	} else if !c.enc {
		return // a decoder with no []byte input is not a codec we understand
	}
	live, done := w.walkBlock(c.decl.Body.List, []*cpath{start})
	if w.bad {
		return
	}
	paths := append(done, live...)
	if len(paths) == 0 {
		return
	}
	canon := paths[0]
	for _, p := range paths[1:] {
		if len(p.ops) > len(canon.ops) {
			canon = p
		}
	}
	for _, p := range paths {
		if p != canon && !isPrefixSeq(p.ops, canon.ops) {
			return // branch-dependent format: skip rather than guess
		}
	}
	c.seq = canon.ops
	c.ok = true
}

// firstSliceParam returns the first []byte parameter, the builder (encoders)
// or root cursor (decoders).
func firstSliceParam(c *codecFn) *types.Var {
	sig := c.fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		v := sig.Params().At(i)
		if isByteSlice(v.Type()) {
			return v
		}
	}
	return nil
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// findCursorResult scans a decoder's returns for a result position that
// yields a continuation cursor (rest, or b[k:]) to the caller. A variable is
// a cursor if it descends from the root []byte parameter through a chain of
// continuation slices (rest := b[4:], rest = rest[n:]); []byte locals that
// hold decoded data (section payloads) are not.
func findCursorResult(c *codecFn) int {
	root := firstSliceParam(c)
	if root == nil {
		return -1
	}
	cursorish := map[*types.Var]bool{root: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
				return true
			}
			se, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
			if !ok || se.High != nil {
				return true
			}
			base, _ := baseIdentObj(c.p, se.X).(*types.Var)
			if base == nil || !cursorish[base] {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if v := identVar(c.p, id); v != nil && !cursorish[v] {
					cursorish[v] = true
					changed = true
				}
			}
			return true
		})
	}
	idx := -1
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) < 2 {
			return true
		}
		for i, r := range ret.Results {
			switch e := ast.Unparen(r).(type) {
			case *ast.SliceExpr:
				if e.High == nil {
					if v, _ := baseIdentObj(c.p, e.X).(*types.Var); v != nil && cursorish[v] {
						idx = i
					}
				}
			case *ast.Ident:
				if v, ok := c.p.info.Uses[e].(*types.Var); ok && cursorish[v] && v != root {
					idx = i
				}
			}
		}
		return true
	})
	return idx
}

// walkBlock runs stmts over a set of live paths; returns (live, finished).
func (w *cwalk) walkBlock(stmts []ast.Stmt, live []*cpath) ([]*cpath, []*cpath) {
	var done []*cpath
	for _, s := range stmts {
		var next []*cpath
		for _, st := range live {
			l, d := w.walkStmt(s, st)
			next = append(next, l...)
			done = append(done, d...)
		}
		live = next
		if len(live) > maxCodecPaths || len(done) > maxCodecPaths {
			w.bad = true
			return nil, nil
		}
		if len(live) == 0 {
			break
		}
	}
	return live, done
}

func (w *cwalk) walkStmt(s ast.Stmt, st *cpath) (live, done []*cpath) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(n.X, st)
	case *ast.AssignStmt:
		w.walkAssign(n, st)
	case *ast.IncDecStmt:
		// loop counters: no reads of interest
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.scanExpr(r, st)
		}
		st.term = true
		return nil, []*cpath{st}
	case *ast.IfStmt:
		if n.Init != nil {
			l, d := w.walkStmt(n.Init, st)
			if len(l) != 1 {
				w.bad = true
				return nil, d
			}
			st = l[0]
		}
		w.scanExpr(n.Cond, st)
		thenSt := st.copy()
		tl, td := w.walkBlock(n.Body.List, []*cpath{thenSt})
		done = append(done, td...)
		if n.Else != nil {
			el, ed := w.walkStmt(n.Else, st)
			return append(tl, el...), append(done, ed...)
		}
		return append(tl, st), done
	case *ast.BlockStmt:
		return w.walkBlock(n.List, []*cpath{st})
	case *ast.ForStmt:
		if n.Init != nil {
			l, _ := w.walkStmt(n.Init, st)
			if len(l) != 1 {
				w.bad = true
				return nil, nil
			}
			st = l[0]
		}
		w.scanExpr(n.Cond, st)
		return w.walkLoop(n.Body, st, forCount(w.c.p, n))
	case *ast.RangeStmt:
		w.scanExpr(n.X, st)
		return w.walkLoop(n.Body, st, rangeCount(w.c.p, n))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// No codec in this codebase branches its wire format on a switch;
		// treat as opaque rather than model it.
		w.bad = true
		return nil, nil
	case *ast.BranchStmt:
		// break/continue: end this path as a body prefix
		return nil, []*cpath{st}
	case *ast.LabeledStmt:
		return w.walkStmt(n.Stmt, st)
	}
	return []*cpath{st}, nil
}

// walkLoop folds the body into a rep op: body paths are extracted once, the
// longest consistent one becomes the rep body, and return-terminated body
// paths surface as whole-function early-exit paths.
func (w *cwalk) walkLoop(body *ast.BlockStmt, st *cpath, count int) (live, done []*cpath) {
	pre := len(st.ops)
	bl, bd := w.walkBlock(body.List, []*cpath{st.copy()})
	if w.bad {
		return nil, nil
	}
	// Returns inside the body are early exits of the enclosing function.
	for _, d := range bd {
		if d.term {
			done = append(done, d)
		}
	}
	if len(bl) == 0 {
		// Body always returns: the loop runs at most one visible iteration.
		return nil, done
	}
	canon := bl[0]
	for _, p := range bl[1:] {
		if len(p.ops) > len(canon.ops) {
			canon = p
		}
	}
	for _, p := range bl {
		if p != canon && !isPrefixSeq(p.ops[pre:], canon.ops[pre:]) {
			w.bad = true
			return nil, nil
		}
	}
	out := canon
	bodyOps := append([]op(nil), out.ops[pre:]...)
	out.ops = append(out.ops[:pre:pre], op{kind: opRep, count: count, body: bodyOps})
	return []*cpath{out}, done
}

// forCount extracts a static iteration count from `for i := 0; i < N; i++`.
func forCount(p *pkg, n *ast.ForStmt) int {
	cond, ok := n.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return -1
	}
	if v := constIntOf(p, cond.Y); v >= 0 {
		if as, ok := n.Init.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if lo := constIntOf(p, as.Rhs[0]); lo >= 0 {
				return v - lo
			}
		}
	}
	return -1
}

// rangeCount returns the element count when ranging over a composite literal.
func rangeCount(p *pkg, n *ast.RangeStmt) int {
	if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
		return len(cl.Elts)
	}
	return -1
}

// constIntOf evaluates e as a compile-time integer, -1 if it is not one.
func constIntOf(p *pkg, e ast.Expr) int {
	tv, ok := p.info.Types[e]
	if !ok || tv.Value == nil {
		return -1
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok || v < 0 {
		return -1
	}
	return int(v)
}

// walkAssign scans the RHS for ops, then updates builder/cursor bookkeeping.
func (w *cwalk) walkAssign(n *ast.AssignStmt, st *cpath) {
	for _, r := range n.Rhs {
		w.scanExpr(r, st)
	}
	if len(n.Rhs) != 1 {
		return
	}
	rhs := ast.Unparen(n.Rhs[0])

	bind := func(i int) {
		if i < 0 || i >= len(n.Lhs) {
			return
		}
		id, ok := n.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v := identVar(w.c.p, id)
		if v == nil {
			return
		}
		if g, ok := st.gens[v]; ok {
			st.gens[v] = g + 1
		} else {
			st.gens[v] = 0
		}
	}

	switch e := rhs.(type) {
	case *ast.SliceExpr:
		// rest := b[k:] — continuation cursor (or builder reslice).
		if e.High == nil && w.trackedVar(e.X, st) != nil {
			bind(0)
		}
	case *ast.CallExpr:
		callee := calleeOf(w.c.p, e)
		if c := w.byFunc[callee]; c != nil && !c.enc && c.cursorResult >= 0 && w.callUsesCursor(e, st) {
			bind(c.cursorResult)
		}
		if w.c.enc {
			// b := make([]byte, ...) — a local builder (EncodeSegImage style).
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
				if t, ok := w.c.p.info.Types[e.Args[0]]; ok && isByteSlice(t.Type) {
					bind(0)
				}
			}
			// b = append(b, ...) / b = AppendX(b, ...): builder stays tracked.
		}
	}
}

// trackedVar resolves e to a currently tracked builder/cursor variable.
func (w *cwalk) trackedVar(e ast.Expr, st *cpath) *types.Var {
	obj := baseIdentObj(w.c.p, ast.Unparen(e))
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := st.gens[v]; !tracked {
		return nil
	}
	return v
}

func identVar(p *pkg, id *ast.Ident) *types.Var {
	if v, ok := p.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := p.info.Uses[id].(*types.Var)
	return v
}

// emitRead appends a fixed-width read op once per (cursor, generation,
// offset): re-reading the same bytes (b[0] validated then returned) is one
// wire field, not two.
func (w *cwalk) emitRead(k opKind, v *types.Var, gen int, offKey string, st *cpath) {
	key := v.Name() + "#" + itoa(gen) + "@" + offKey
	if st.seen[key] {
		return
	}
	st.seen[key] = true
	st.ops = append(st.ops, op{kind: k})
}

// offsetKey renders a slice/index offset expression for read dedupe.
func (w *cwalk) offsetKey(e ast.Expr) string {
	if e == nil {
		return "0"
	}
	if v := constIntOf(w.c.p, e); v >= 0 {
		return itoa(v)
	}
	return render(e)
}

// scanExpr walks one expression emitting ops in evaluation order.
func (w *cwalk) scanExpr(e ast.Expr, st *cpath) {
	switch n := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		w.scanCall(n, st)
	case *ast.BinaryExpr:
		w.scanExpr(n.X, st)
		w.scanExpr(n.Y, st)
	case *ast.UnaryExpr:
		w.scanExpr(n.X, st)
	case *ast.StarExpr:
		w.scanExpr(n.X, st)
	case *ast.ParenExpr:
		w.scanExpr(n.X, st)
	case *ast.TypeAssertExpr:
		w.scanExpr(n.X, st)
	case *ast.IndexExpr:
		if !w.c.enc {
			if v := w.trackedVar(n.X, st); v != nil {
				w.emitRead(opU8, v, st.gens[v], w.offsetKey(n.Index), st)
				return
			}
		}
		w.scanExpr(n.X, st)
		w.scanExpr(n.Index, st)
	case *ast.SliceExpr:
		if v := w.trackedVar(n.X, st); v != nil {
			if n.High == nil {
				return // continuation cursor / builder reslice: no bytes move
			}
			if !w.c.enc && constIntOf(w.c.p, n.High) < 0 {
				// rest[:n] with a dynamic bound: a byte-run read.
				st.ops = append(st.ops, op{kind: opBytes})
			}
			// Constant-bounded windows (b[0:4]) are header reads handled by
			// the enclosing binary.BigEndian call; bare ones move no cursor.
			return
		}
		w.scanExpr(n.X, st)
		w.scanExpr(n.Low, st)
		w.scanExpr(n.High, st)
		w.scanExpr(n.Max, st)
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.scanExpr(kv.Value, st)
				continue
			}
			w.scanExpr(el, st)
		}
	case *ast.FuncLit:
		// closures do not touch the builder/cursor in any codec we accept
	}
}

// widthOps maps encoding/binary function names to ops.
var widthOps = map[string]opKind{
	"AppendUint16": opU16, "AppendUint32": opU32, "AppendUint64": opU64,
	"Uint16": opU16, "Uint32": opU32, "Uint64": opU64,
	"PutUint16": opU16, "PutUint32": opU32, "PutUint64": opU64,
}

func (w *cwalk) scanCall(call *ast.CallExpr, st *cpath) {
	// binary.BigEndian.UintNN / AppendUintNN
	if k, slice, ok := w.binaryOp(call); ok {
		if w.c.enc {
			if w.trackedVar(slice, st) != nil {
				st.ops = append(st.ops, op{kind: k})
			}
			for _, a := range call.Args[1:] {
				w.scanExpr(a, st)
			}
			return
		}
		// Decode: the argument is cursor[lo:hi]; dedupe on (cursor, gen, lo).
		if se, ok := ast.Unparen(slice).(*ast.SliceExpr); ok {
			if v := w.trackedVar(se.X, st); v != nil {
				w.emitRead(k, v, st.gens[v], w.offsetKey(se.Low), st)
				return
			}
		}
		if v := w.trackedVar(slice, st); v != nil {
			w.emitRead(k, v, st.gens[v], "0", st)
			return
		}
		w.scanExpr(slice, st)
		return
	}

	// append(builder, ...) on the encode side
	if w.c.enc {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if w.trackedVar(call.Args[0], st) != nil {
				if call.Ellipsis.IsValid() {
					st.ops = append(st.ops, op{kind: opBytes})
				} else {
					for range call.Args[1:] {
						st.ops = append(st.ops, op{kind: opU8})
					}
				}
				for _, a := range call.Args[1:] {
					w.scanExpr(a, st)
				}
				return
			}
		}
	}

	// Delegation to another codec function in the set.
	callee := calleeOf(w.c.p, call)
	if c := w.byFunc[callee]; c != nil && c.enc == w.c.enc && w.callUsesCursor(call, st) {
		st.ops = append(st.ops, op{kind: opCall, fn: callee})
		for _, a := range call.Args[1:] {
			w.scanExpr(a, st)
		}
		return
	}

	// Anything else: scan arguments for reads (len(b) etc. emit nothing).
	for _, a := range call.Args {
		w.scanExpr(a, st)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.scanExpr(sel.X, st)
	}
}

// binaryOp matches binary.BigEndian.<fn>(slice, ...) calls, returning the op
// kind and the slice argument.
func (w *cwalk) binaryOp(call *ast.CallExpr) (opKind, ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, nil, false
	}
	k, ok := widthOps[sel.Sel.Name]
	if !ok || len(call.Args) == 0 {
		return 0, nil, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || (inner.Sel.Name != "BigEndian" && inner.Sel.Name != "LittleEndian") {
		return 0, nil, false
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok {
		return 0, nil, false
	}
	pn, ok := w.c.p.info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "encoding/binary" {
		return 0, nil, false
	}
	return k, call.Args[0], true
}

// callUsesCursor reports whether the call's first argument is the tracked
// builder/cursor (plainly or as a continuation slice).
func (w *cwalk) callUsesCursor(call *ast.CallExpr, st *cpath) bool {
	if len(call.Args) == 0 {
		return false
	}
	return w.trackedVar(call.Args[0], st) != nil
}
