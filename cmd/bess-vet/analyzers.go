package main

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// finding is one diagnostic, printed as file:line: [analyzer] message.
type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

type reporter struct {
	fset     *token.FileSet
	findings []finding
}

func (r *reporter) report(pos token.Pos, analyzer, format string, args ...any) {
	r.findings = append(r.findings, finding{
		pos:      r.fset.Position(pos),
		analyzer: analyzer,
		msg:      fmt.Sprintf(format, args...),
	})
}

func (r *reporter) sorted() []finding {
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i].pos, r.findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return r.findings[i].msg < r.findings[j].msg
	})
	return r.findings
}

// --- lockorder: hierarchy violations across the call graph ---

// acquireSummary is the set of ranked lock classes a function may acquire,
// directly or transitively (interface and closure calls are not resolved;
// the runtime checker covers those edges).
type acquireSummary map[string]token.Pos

// buildAcquires runs a fixpoint over the static call graph.
func buildAcquires(flows []*flowResult) map[*types.Func]acquireSummary {
	direct := make(map[*types.Func]acquireSummary)
	callees := make(map[*types.Func][]*types.Func)
	for _, fr := range flows {
		if fr.fn == nil {
			continue
		}
		acq := acquireSummary{}
		for _, ev := range fr.events {
			switch ev.kind {
			case evAcquire:
				if ev.class != "" {
					if _, ok := acq[ev.class]; !ok {
						acq[ev.class] = ev.pos
					}
				}
			case evCall:
				callees[fr.fn] = append(callees[fr.fn], ev.callee)
			}
		}
		direct[fr.fn] = acq
	}
	// Fixpoint: propagate callee acquisitions upward until stable.
	trans := make(map[*types.Func]acquireSummary, len(direct))
	for fn, acq := range direct {
		t := acquireSummary{}
		for k, v := range acq {
			t[k] = v
		}
		trans[fn] = t
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			mine := trans[fn]
			if mine == nil {
				continue
			}
			for _, c := range cs {
				for class, pos := range trans[c] {
					if _, ok := mine[class]; !ok {
						mine[class] = pos
						changed = true
					}
				}
			}
		}
	}
	return trans
}

func analyzeLockOrder(flows []*flowResult, dirs *directives, r *reporter) {
	trans := buildAcquires(flows)
	for _, fr := range flows {
		for _, ev := range fr.events {
			switch ev.kind {
			case evAcquire:
				// Same-instance re-acquisition deadlocks regardless of rank.
				for _, h := range ev.held {
					if h.name == ev.name && !h.contract {
						if h.shared && ev.shared {
							r.report(ev.pos, "lockorder",
								"recursive RLock of %s (first RLock at %s): deadlocks against a queued writer",
								ev.name, r.fset.Position(h.pos))
						} else {
							r.report(ev.pos, "lockorder",
								"%s re-acquired while already held (locked at %s)",
								ev.name, r.fset.Position(h.pos))
						}
					}
				}
				rank := dirs.rank[ev.class]
				if rank == 0 {
					continue
				}
				for _, h := range ev.held {
					hr := dirs.rank[h.class]
					if hr == 0 || h.name == ev.name {
						continue
					}
					if hr >= rank {
						r.report(ev.pos, "lockorder",
							"acquiring %s (%s) while holding %s (%s) violates the declared order %s < %s",
							ev.name, ev.class, h.name, h.class, ev.class, h.class)
					}
				}
			case evCall:
				// A callee that (transitively) acquires a class ranked at or
				// below a lock we hold nests against the declared order.
				acq := trans[ev.callee]
				if len(acq) == 0 {
					continue
				}
				for _, h := range ev.held {
					hr := dirs.rank[h.class]
					if hr == 0 {
						continue
					}
					for class := range acq {
						cr := dirs.rank[class]
						if cr == 0 {
							continue
						}
						if class == h.class && ev.recvExpr != "" && fmtLockName(ev.recvExpr, class) == h.name {
							// Calling a //bess:holds helper on the same
							// instance is the contract case, checked below.
							continue
						}
						if cr <= hr {
							r.report(ev.pos, "lockorder",
								"call to %s may acquire %s while %s (%s) is held; declared order requires %s before %s",
								ev.callee.Name(), class, h.name, h.class, class, h.class)
						}
					}
				}
				// //bess:holds contract: the caller must hold recv.mu.
				if mu, ok := dirs.holds[ev.callee]; ok && ev.recvExpr != "" {
					want := ev.recvExpr + "." + mu
					holds := false
					for _, h := range ev.held {
						if h.name == want && !h.shared {
							holds = true
							break
						}
					}
					if !holds {
						r.report(ev.pos, "lockorder",
							"%s requires %s held (//bess:holds %s) but the caller does not hold it",
							ev.callee.Name(), want, mu)
					}
				}
			}
		}
	}
}

func fmtLockName(recvExpr, class string) string {
	// class is "Type.field": the instance the callee locks is recv.field.
	for i := len(class) - 1; i >= 0; i-- {
		if class[i] == '.' {
			return recvExpr + class[i:]
		}
	}
	return recvExpr
}

// --- guarded: annotated fields only touched with their mutex held ---

func analyzeGuarded(flows []*flowResult, dirs *directives, r *reporter) {
	for _, fr := range flows {
		if fr.fn != nil && dirs.prepublish[fr.fn] {
			continue
		}
		for _, ev := range fr.events {
			if ev.kind != evAccess {
				continue
			}
			mu := dirs.guarded[ev.field]
			if mu == "" || ev.name == "" {
				continue
			}
			want := ev.name + "." + mu
			var got *heldLock
			for i := range ev.held {
				if ev.held[i].name == want {
					got = &ev.held[i]
					break
				}
			}
			verb := "read"
			if ev.write {
				verb = "write to"
			}
			if got == nil {
				r.report(ev.pos, "guarded",
					"%s %s.%s without holding %s (field is guarded by %s)",
					verb, ev.name, ev.field.Name(), want, mu)
				continue
			}
			if ev.write && got.shared {
				r.report(ev.pos, "guarded",
					"write to %s.%s under RLock of %s; writes require the exclusive lock",
					ev.name, ev.field.Name(), want)
			}
		}
	}
}

// --- defers: every acquisition released on every exit path ---

func analyzeDefers(flows []*flowResult, dirs *directives, r *reporter) {
	for _, fr := range flows {
		var contractName string
		if fr.fn != nil {
			if mu, ok := dirs.holds[fr.fn]; ok && fr.decl.Recv != nil &&
				len(fr.decl.Recv.List) > 0 && len(fr.decl.Recv.List[0].Names) > 0 {
				contractName = fr.decl.Recv.List[0].Names[0].Name + "." + mu
			}
		}
		for _, ev := range fr.events {
			switch ev.kind {
			case evExit:
				holdsContract := false
				for _, h := range ev.held {
					if h.name == contractName {
						holdsContract = true
					}
					if h.deferred || h.contract {
						continue
					}
					r.report(ev.pos, "defers",
						"%s still held at function exit (locked at %s) with no deferred or explicit release on this path",
						h.name, r.fset.Position(h.pos))
				}
				if contractName != "" && !ev.inLit && !holdsContract {
					r.report(ev.pos, "defers",
						"exit path releases %s, but //bess:holds requires it held on return",
						contractName)
				}
			case evBranchLeak:
				r.report(ev.pos, "defers",
					"%s is held on one branch path but not the other at this merge point (missed Unlock or TryLock arm)",
					ev.name)
			}
		}
	}
}
