package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// monitored lists the error-returning durability APIs whose results must
// not be silently dropped: losing one of these errors can acknowledge a
// commit whose bytes never reached stable storage (paper §3, recovery).
// Keys are "importPath.Type"; values are the method sets.
var monitored = map[string]map[string]bool{
	"os.File": {
		"Sync": true, "Close": true, "Write": true,
		"WriteAt": true, "WriteString": true, "Truncate": true,
	},
	"bess/internal/wal.Log":     {"Append": true, "Flush": true, "Close": true},
	"bess/internal/wal.backing": {"Sync": true, "Close": true, "WriteAt": true},
	"bess/internal/area.Area": {
		"WritePage": true, "AllocSegment": true, "FreeSegment": true,
		"Sync": true, "Close": true,
	},
	"bess/internal/area.store":     {"Sync": true, "Close": true, "WriteAt": true, "Truncate": true},
	"bess/internal/largeobj.Store": {"WriteRun": true, "Free": true},
	"bess/internal/server.Server":  {"Close": true},
}

// monitoredCall reports whether call is a monitored method invocation and
// returns its display name ("(*os.File).Sync").
func monitoredCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if ms, ok := monitored[key]; ok && ms[fn.Name()] {
		return "(" + obj.Name() + ")." + fn.Name(), true
	}
	return "", false
}

// analyzeDurability flags silently dropped and shadowed errors from the
// monitored calls. An explicit `_ = f.Close()` is a visible, reviewable
// decision and is permitted; a bare expression statement or a bare defer is
// not — the reader cannot tell a decided discard from an oversight.
func analyzeDurability(pkgs []*pkg, r *reporter) {
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				analyzeDurabilityFunc(p, fd, r)
			}
		}
	}
}

func analyzeDurabilityFunc(p *pkg, fd *ast.FuncDecl, r *reporter) {
	info := p.info
	// Pass 1: dropped results.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if name, ok := monitoredCall(info, call); ok {
					r.report(call.Pos(), "durability",
						"result of %s is silently dropped; handle the error or discard it explicitly with _ =", name)
				}
			}
		case *ast.DeferStmt:
			if name, ok := monitoredCall(info, s.Call); ok {
				r.report(s.Call.Pos(), "durability",
					"deferred %s drops its error; use a named return and errors.Join, or discard explicitly inside a closure", name)
			}
		case *ast.GoStmt:
			if name, ok := monitoredCall(info, s.Call); ok {
				r.report(s.Call.Pos(), "durability",
					"go %s discards its error in a goroutine nobody observes", name)
			}
		}
		return true
	})
	// Pass 2: shadowed errors — an error variable assigned from a monitored
	// call and never read before being overwritten or going out of scope.
	analyzeShadowed(p, fd, r)
}

// errAssign is one `v = monitoredCall()` site.
type errAssign struct {
	obj  types.Object
	pos  token.Pos
	name string // monitored call display name
}

func analyzeShadowed(p *pkg, fd *ast.FuncDecl, r *reporter) {
	info := p.info
	var assigns []errAssign
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := monitoredCall(info, call)
		if !ok {
			return true
		}
		// The error result is the last LHS operand by Go convention.
		last := as.Lhs[len(as.Lhs)-1]
		id, ok := last.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true // blank discard: explicitly permitted
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !isErrorType(obj.Type()) {
			return true
		}
		assigns = append(assigns, errAssign{obj: obj, pos: id.Pos(), name: name})
		return true
	})
	if len(assigns) == 0 {
		return
	}
	// For each assignment, look for a read of the same object after the
	// assignment and before the next write to it.
	for _, a := range assigns {
		nextWrite := token.Pos(fd.Body.End())
		read := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Pos() <= a.pos || id.Pos() >= nextWrite {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj != a.obj {
				return true
			}
			if isWriteTarget(fd.Body, id) {
				if id.Pos() < nextWrite {
					nextWrite = id.Pos()
				}
				return true
			}
			read = true
			return true
		})
		if !read {
			r.report(a.pos, "durability",
				"error from %s assigned to %s but never checked before it is overwritten or discarded", a.name, a.obj.Name())
		}
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && strings.HasSuffix(t.String(), "error")
}

// isWriteTarget reports whether id appears as an assignment LHS.
func isWriteTarget(root ast.Node, id *ast.Ident) bool {
	write := false
	ast.Inspect(root, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if l == id {
				write = true
			}
		}
		return true
	})
	return write
}
