package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Event kinds produced by the lock-flow walk of one function. Each event
// carries a snapshot of the locks the executing goroutine holds at that
// point, so the analyzers (lockorder, guarded, defers) are straight-line
// consumers with no flow logic of their own.
type eventKind int

const (
	evAcquire    eventKind = iota // a Lock/RLock/successful TryLock
	evCall                        // a call to a resolved module function
	evAccess                      // a read or write of an annotated struct field
	evExit                        // a return statement or fall-off-the-end
	evBranchLeak                  // a lock held on some but not all branch paths
)

type heldLock struct {
	name     string // instance identity, e.g. "s.areaMu", "l.mu"
	class    string // declared class "Server.areaMu", "" if untyped/local
	shared   bool   // held via RLock
	deferred bool   // a defer guarantees the release
	contract bool   // seeded from //bess:holds (caller owns the release)
	pos      token.Pos
}

type event struct {
	kind   eventKind
	pos    token.Pos
	held   []heldLock // snapshot before the event takes effect
	name   string     // acquire: instance; access: owner expr; branchLeak: instance
	class  string     // acquire: lock class
	shared bool       // acquire: RLock

	callee   *types.Func // evCall
	recvExpr string      // evCall: rendered receiver ("s.cat"), "" if none

	field *types.Var // evAccess
	write bool       // evAccess

	inLit bool // evExit: exit of a function literal, not the function itself
}

// flowResult is the per-function output of the walk.
type flowResult struct {
	fn     *types.Func
	decl   *ast.FuncDecl
	pkg    *pkg
	events []event
}

type fstate struct {
	held []heldLock
}

func (st *fstate) copy() *fstate {
	c := &fstate{held: make([]heldLock, len(st.held))}
	copy(c.held, st.held)
	return c
}

func (st *fstate) find(name string) int {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].name == name {
			return i
		}
	}
	return -1
}

type flow struct {
	p        *pkg
	dirs     *directives
	res      *flowResult
	exempt   map[types.Object]bool // locals still private to this function
	contract map[string]bool       // lock names seeded by //bess:holds
	litDepth int                   // >0 while walking a function literal body
}

// flowsOf runs the lock-flow walk over every function in the package.
func flowsOf(p *pkg, dirs *directives) []*flowResult {
	var out []*flowResult
	for _, f := range p.files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, walkFunc(p, dirs, fd))
			}
		}
	}
	return out
}

// walkFunc runs the lock-flow analysis over one function declaration.
func walkFunc(p *pkg, dirs *directives, decl *ast.FuncDecl) *flowResult {
	obj, _ := p.info.Defs[decl.Name].(*types.Func)
	res := &flowResult{fn: obj, decl: decl, pkg: p}
	if decl.Body == nil {
		return res
	}
	w := &flow{p: p, dirs: dirs, res: res, exempt: make(map[types.Object]bool), contract: make(map[string]bool)}
	st := &fstate{}
	// //bess:holds mu seeds the state: the caller acquired recv.mu and will
	// release it; the body may unlock/relock but must exit with it held.
	if obj != nil {
		if mu, ok := dirs.holds[obj]; ok && decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
			recv := decl.Recv.List[0].Names[0].Name
			name := recv + "." + mu
			w.contract[name] = true
			st.held = append(st.held, heldLock{
				name:     name,
				class:    w.classOfRecvField(decl, mu),
				contract: true,
				pos:      decl.Pos(),
			})
		}
	}
	if !w.walkBlock(decl.Body, st) {
		w.emitExit(decl.Body.End(), st)
	}
	return res
}

// classOfRecvField resolves "TypeName.mu" for a //bess:holds seed.
func (w *flow) classOfRecvField(decl *ast.FuncDecl, mu string) string {
	t := decl.Recv.List[0].Type
	for {
		switch n := t.(type) {
		case *ast.StarExpr:
			t = n.X
		case *ast.IndexExpr: // generic receiver, not used here
			t = n.X
		case *ast.Ident:
			return n.Name + "." + mu
		default:
			return ""
		}
	}
}

func (w *flow) snap(st *fstate) []heldLock {
	out := make([]heldLock, len(st.held))
	copy(out, st.held)
	return out
}

func (w *flow) emitExit(pos token.Pos, st *fstate) {
	w.res.events = append(w.res.events, event{kind: evExit, pos: pos, held: w.snap(st), inLit: w.litDepth > 0})
}

// --- expression rendering and lock-op classification ---

// render prints the receiver expression of a lock op or field access in a
// canonical textual form; "" means unrepresentable (and untracked).
func render(e ast.Expr) string {
	switch n := e.(type) {
	case *ast.Ident:
		return n.Name
	case *ast.SelectorExpr:
		base := render(n.X)
		if base == "" {
			return ""
		}
		return base + "." + n.Sel.Name
	case *ast.IndexExpr:
		base := render(n.X)
		idx := render(n.Index)
		if base == "" {
			return ""
		}
		if idx == "" {
			idx = "?"
		}
		return base + "[" + idx + "]"
	case *ast.ParenExpr:
		return render(n.X)
	case *ast.StarExpr:
		return render(n.X)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			return render(n.X)
		}
	case *ast.BasicLit:
		return n.Value
	}
	return ""
}

// baseObject returns the types.Object of the leftmost identifier of an
// owner expression (for the constructor-local exemption).
func (w *flow) baseObject(e ast.Expr) types.Object {
	for {
		switch n := e.(type) {
		case *ast.Ident:
			return w.p.info.Uses[n]
		case *ast.SelectorExpr:
			e = n.X
		case *ast.IndexExpr:
			e = n.X
		case *ast.ParenExpr:
			e = n.X
		case *ast.StarExpr:
			e = n.X
		default:
			return nil
		}
	}
}

type lockOp struct {
	recv    ast.Expr
	name    string // rendered instance
	class   string // "Type.field" when the receiver is a struct field
	method  string // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
	variant string // "sync" or "lockcheck"
}

var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "Unlock": true,
	"RUnlock": true, "TryLock": true, "TryRLock": true,
}

// asLockOp classifies call as an operation on a sync or lockcheck mutex.
func (w *flow) asLockOp(call *ast.CallExpr) *lockOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !lockMethods[sel.Sel.Name] {
		return nil
	}
	tv, ok := w.p.info.Types[sel.X]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	variant := ""
	if obj.Pkg() != nil {
		switch {
		case obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex"):
			variant = "sync"
		case strings.HasSuffix(obj.Pkg().Path(), "internal/lockcheck") && (obj.Name() == "Mutex" || obj.Name() == "RWMutex"):
			variant = "lockcheck"
		}
	}
	if variant == "" {
		return nil
	}
	op := &lockOp{recv: sel.X, name: render(sel.X), method: sel.Sel.Name, variant: variant}
	// Lock class: the receiver is a named field of some struct.
	if fieldSel, ok := sel.X.(*ast.SelectorExpr); ok {
		if s, ok := w.p.info.Selections[fieldSel]; ok && s.Kind() == types.FieldVal {
			rt := s.Recv()
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if n, ok := rt.(*types.Named); ok {
				op.class = n.Obj().Name() + "." + fieldSel.Sel.Name
			}
		}
	}
	return op
}

func (w *flow) applyAcquire(op *lockOp, pos token.Pos, st *fstate) {
	shared := op.method == "RLock" || op.method == "TryRLock"
	w.res.events = append(w.res.events, event{
		kind: evAcquire, pos: pos, held: w.snap(st),
		name: op.name, class: op.class, shared: shared,
	})
	st.held = append(st.held, heldLock{name: op.name, class: op.class, shared: shared, contract: w.contract[op.name], pos: pos})
}

func (w *flow) applyRelease(op *lockOp, st *fstate) {
	if i := st.find(op.name); i >= 0 {
		st.held = append(st.held[:i], st.held[i+1:]...)
	}
	// Releasing a lock the walker does not believe is held is not reported:
	// conditional-lock merges lose may-held entries by design.
}

// --- expression scanning ---

// scanExpr walks an expression tree emitting call, access, and lock events.
func (w *flow) scanExpr(e ast.Expr, st *fstate, write bool) {
	switch n := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		if op := w.asLockOp(n); op != nil {
			switch op.method {
			case "Lock", "RLock":
				w.applyAcquire(op, n.Pos(), st)
			case "TryLock", "TryRLock":
				// Outside the `if mu.TryLock()` form: treat as acquired
				// (conservative; failed tries never hold anything).
				w.applyAcquire(op, n.Pos(), st)
			case "Unlock", "RUnlock":
				w.applyRelease(op, st)
			}
			return
		}
		// delete(m.field, k) writes through the map field.
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
			w.scanExpr(n.Args[0], st, true)
			w.scanExpr(n.Args[1], st, false)
			return
		}
		w.emitCall(n, st)
		for _, a := range n.Args {
			w.scanExpr(a, st, false)
		}
		// Calls through selector chains read the chain.
		if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
			w.scanExpr(sel.X, st, false)
		}
	case *ast.SelectorExpr:
		w.emitAccess(n, st, write)
		w.scanExpr(n.X, st, false)
	case *ast.IndexExpr:
		// Indexing an annotated map/slice field reads or writes the field.
		w.scanExpr(n.X, st, write)
		w.scanExpr(n.Index, st, false)
	case *ast.IndexListExpr:
		w.scanExpr(n.X, st, write)
		for _, ix := range n.Indices {
			w.scanExpr(ix, st, false)
		}
	case *ast.SliceExpr:
		w.scanExpr(n.X, st, write)
		w.scanExpr(n.Low, st, false)
		w.scanExpr(n.High, st, false)
		w.scanExpr(n.Max, st, false)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			// Taking a field's address escapes it; require the write lock.
			w.scanExpr(n.X, st, true)
			return
		}
		w.scanExpr(n.X, st, false)
	case *ast.BinaryExpr:
		w.scanExpr(n.X, st, false)
		w.scanExpr(n.Y, st, false)
	case *ast.ParenExpr:
		w.scanExpr(n.X, st, write)
	case *ast.StarExpr:
		w.scanExpr(n.X, st, write)
	case *ast.TypeAssertExpr:
		w.scanExpr(n.X, st, false)
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.scanExpr(kv.Value, st, false)
				continue
			}
			w.scanExpr(el, st, false)
		}
	case *ast.FuncLit:
		// A function literal runs in its own dynamic context (goroutine,
		// callback, deferred cleanup): analyze with an empty held set.
		w.litDepth++
		sub := &fstate{}
		if !w.walkBlock(n.Body, sub) {
			w.emitExit(n.Body.End(), sub)
		}
		w.litDepth--
	case *ast.KeyValueExpr:
		w.scanExpr(n.Value, st, false)
	}
}

func (w *flow) emitCall(call *ast.CallExpr, st *fstate) {
	var obj types.Object
	var recvExpr string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = w.p.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.p.info.Uses[fun.Sel]
		recvExpr = render(fun.X)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	w.res.events = append(w.res.events, event{
		kind: evCall, pos: call.Pos(), held: w.snap(st),
		callee: fn, recvExpr: recvExpr,
	})
}

// emitAccess reports a field read/write when the field carries a
// `guarded by` annotation and the owner is not a constructor-local value.
func (w *flow) emitAccess(sel *ast.SelectorExpr, st *fstate, write bool) {
	s, ok := w.p.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	if _, guarded := w.dirs.guarded[fieldVar]; !guarded {
		return
	}
	if base := w.baseObject(sel.X); base != nil && w.exempt[base] {
		return
	}
	w.res.events = append(w.res.events, event{
		kind: evAccess, pos: sel.Pos(), held: w.snap(st),
		name: render(sel.X), field: fieldVar, write: write,
	})
}

// --- statement walking ---

func (w *flow) walkBlock(b *ast.BlockStmt, st *fstate) bool {
	for _, s := range b.List {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

// isConstructorRHS reports whether e builds a brand-new value (composite
// literal, &literal, or new(T)) that no other goroutine can reference yet.
func isConstructorRHS(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			_, ok := n.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// terminates reports whether a call never returns (panic, os.Exit, Fatal*).
func (w *flow) callTerminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Exit" || name == "Goexit" || strings.HasPrefix(name, "Fatal") {
			if id, ok := fun.X.(*ast.Ident); ok {
				switch id.Name {
				case "os", "runtime", "log", "t", "b", "tb":
					return true
				}
			}
		}
	}
	return false
}

func (w *flow) walkStmt(s ast.Stmt, st *fstate) bool {
	switch n := s.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok && w.callTerminates(call) {
			w.scanExpr(n.X, st, false)
			return true
		}
		w.scanExpr(n.X, st, false)
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			w.scanExpr(r, st, false)
		}
		for i, l := range n.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if n.Tok == token.DEFINE && i < len(n.Rhs) && isConstructorRHS(n.Rhs[i]) {
					if obj := w.p.info.Defs[id]; obj != nil {
						w.exempt[obj] = true
					}
				}
				continue // writes to locals carry no annotation
			}
			w.scanExpr(l, st, true)
		}
	case *ast.IncDecStmt:
		w.scanExpr(n.X, st, true)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, st, false)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.walkDefer(n, st)
	case *ast.GoStmt:
		// The spawned goroutine starts with an empty held set.
		if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
			w.litDepth++
			sub := &fstate{}
			if !w.walkBlock(fl.Body, sub) {
				w.emitExit(fl.Body.End(), sub)
			}
			w.litDepth--
		} else {
			empty := &fstate{}
			w.emitCall(n.Call, empty)
		}
		for _, a := range n.Call.Args {
			w.scanExpr(a, st, false)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.scanExpr(r, st, false)
		}
		w.emitExit(n.Pos(), st)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct, not the
		// function; the loop/switch walk treats them as path ends.
		return true
	case *ast.BlockStmt:
		return w.walkBlock(n, st)
	case *ast.IfStmt:
		return w.walkIf(n, st)
	case *ast.ForStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.scanExpr(n.Cond, st, false)
		body := st.copy()
		w.walkBlock(n.Body, body)
		if n.Post != nil {
			w.walkStmt(n.Post, body)
		}
		w.leakCheck(n.Body.End(), st, body)
	case *ast.RangeStmt:
		w.scanExpr(n.X, st, false)
		body := st.copy()
		w.walkBlock(n.Body, body)
		w.leakCheck(n.Body.End(), st, body)
	case *ast.SwitchStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.scanExpr(n.Tag, st, false)
		return w.walkCases(n.Body, st, true)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			w.walkStmt(n.Init, st)
		}
		w.walkStmt(n.Assign, st)
		return w.walkCases(n.Body, st, true)
	case *ast.SelectStmt:
		return w.walkCases(n.Body, st, false)
	case *ast.LabeledStmt:
		return w.walkStmt(n.Stmt, st)
	case *ast.SendStmt:
		w.scanExpr(n.Chan, st, false)
		w.scanExpr(n.Value, st, false)
	}
	return false
}

// walkDefer handles `defer X`: unlock defers satisfy every exit path.
func (w *flow) walkDefer(n *ast.DeferStmt, st *fstate) {
	if op := w.asLockOp(n.Call); op != nil {
		if op.method == "Unlock" || op.method == "RUnlock" {
			if i := st.find(op.name); i >= 0 {
				st.held[i].deferred = true
			}
		}
		return
	}
	if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
		// A deferred closure that unlocks counts as a deferred release.
		ast.Inspect(fl.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if op := w.asLockOp(call); op != nil && (op.method == "Unlock" || op.method == "RUnlock") {
					if i := st.find(op.name); i >= 0 {
						st.held[i].deferred = true
					}
				}
			}
			return true
		})
		return
	}
	w.emitCall(n.Call, st)
	for _, a := range n.Call.Args {
		w.scanExpr(a, st, false)
	}
}

// tryLockCond matches `mu.TryLock()` / `!mu.TryLock()` conditions.
// Returns the op and whether the then-branch is the success branch.
func (w *flow) tryLockCond(cond ast.Expr) (*lockOp, bool) {
	neg := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		neg = true
		cond = u.X
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	op := w.asLockOp(call)
	if op == nil || (op.method != "TryLock" && op.method != "TryRLock") {
		return nil, false
	}
	return op, !neg
}

func (w *flow) walkIf(n *ast.IfStmt, st *fstate) bool {
	if n.Init != nil {
		w.walkStmt(n.Init, st)
	}
	thenSt := st.copy()
	elseSt := st.copy()
	if op, thenHolds := w.tryLockCond(n.Cond); op != nil {
		if thenHolds {
			w.applyAcquire(op, n.Cond.Pos(), thenSt)
		} else {
			w.applyAcquire(op, n.Cond.Pos(), elseSt)
		}
	} else {
		w.scanExpr(n.Cond, st, false)
		thenSt = st.copy()
		elseSt = st.copy()
	}
	tTerm := w.walkBlock(n.Body, thenSt)
	eTerm := false
	if n.Else != nil {
		eTerm = w.walkStmt(n.Else, elseSt)
	}
	switch {
	case tTerm && eTerm:
		return true
	case tTerm:
		st.held = elseSt.held
	case eTerm:
		st.held = thenSt.held
	default:
		w.leakCheck(n.End(), thenSt, elseSt)
		st.held = intersectHeld(thenSt.held, elseSt.held)
	}
	return false
}

// walkCases merges switch/select clause bodies. implicitSkip adds the
// "no case matched" path for switches without a default clause.
func (w *flow) walkCases(body *ast.BlockStmt, st *fstate, implicitSkip bool) bool {
	var survivors [][]heldLock
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, st, false)
			}
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, st.copy())
			} else {
				hasDefault = true
			}
			stmts = c.Body
		}
		cst := st.copy()
		term := false
		for _, s := range stmts {
			if w.walkStmt(s, cst) {
				term = true
				break
			}
		}
		if !term {
			survivors = append(survivors, cst.held)
		}
	}
	if implicitSkip && !hasDefault {
		survivors = append(survivors, st.copy().held)
	}
	if len(survivors) == 0 {
		return len(body.List) > 0
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged = intersectHeld(merged, s)
	}
	st.held = merged
	return false
}

// leakCheck flags locks held after one branch but not another — the
// conditionally-leaked-lock bug class (an un-released TryLock arm, or a
// Lock with the Unlock only on one path).
func (w *flow) leakCheck(pos token.Pos, a, b *fstate) {
	report := func(only *fstate, other *fstate) {
		for _, h := range only.held {
			if h.deferred || h.contract {
				continue
			}
			found := false
			for _, o := range other.held {
				if o.name == h.name {
					found = true
					break
				}
			}
			if !found {
				w.res.events = append(w.res.events, event{
					kind: evBranchLeak, pos: pos, name: h.name, held: []heldLock{h},
				})
			}
		}
	}
	report(a, b)
	report(b, a)
}

func intersectHeld(a, b []heldLock) []heldLock {
	var out []heldLock
	for _, h := range a {
		for _, o := range b {
			if o.name == h.name {
				m := h
				m.deferred = h.deferred && o.deferred
				out = append(out, m)
				break
			}
		}
	}
	return out
}
