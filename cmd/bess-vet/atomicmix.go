package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicmix enforces the sync/atomic consistency rule: once any code path
// accesses a field through the sync/atomic functions, every access must be
// atomic. A plain load next to atomic.AddInt64 is a data race the race
// detector only catches when the schedule cooperates; this check catches it
// statically (the RacerD posture: one atomic access taints the field).
//
// It also checks 64-bit alignment: a plain int64/uint64 field used with the
// 64-bit atomic functions must sit at an 8-byte offset under the 32-bit
// layout, or 386/ARM builds fault at runtime. Typed atomics (atomic.Int64
// and friends) are exempt from both checks by construction — the type
// guarantees atomicity and carries its own alignment.

// atomicArgWidth maps sync/atomic function names (first argument is the
// target pointer) to the access width in bits.
var atomicArgWidth = map[string]int{
	"LoadInt32": 32, "LoadUint32": 32, "LoadInt64": 64, "LoadUint64": 64,
	"LoadUintptr": 0, "LoadPointer": 0,
	"StoreInt32": 32, "StoreUint32": 32, "StoreInt64": 64, "StoreUint64": 64,
	"StoreUintptr": 0, "StorePointer": 0,
	"AddInt32": 32, "AddUint32": 32, "AddInt64": 64, "AddUint64": 64,
	"AddUintptr": 0,
	"SwapInt32":  32, "SwapUint32": 32, "SwapInt64": 64, "SwapUint64": 64,
	"SwapUintptr": 0, "SwapPointer": 0,
	"CompareAndSwapInt32": 32, "CompareAndSwapUint32": 32,
	"CompareAndSwapInt64": 64, "CompareAndSwapUint64": 64,
	"CompareAndSwapUintptr": 0, "CompareAndSwapPointer": 0,
}

type atomicUse struct {
	pos   token.Pos // first atomic access site
	fn    string    // atomic function name, for the message
	has64 bool      // some access is 64-bit wide
}

func analyzeAtomicMix(pkgs []*pkg, dirs *directives, r *reporter) {
	tainted := map[*types.Var]*atomicUse{} // fields/vars accessed atomically
	inAtomic := map[ast.Node]bool{}        // &x.f nodes consumed by atomic calls

	// Pass 1: find every sync/atomic call and record its target.
	for _, p := range pkgs {
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				width, ok := atomicArgWidth[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				pn, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pkgName, ok := p.info.Uses[pn].(*types.PkgName); !ok || pkgName.Imported().Path() != "sync/atomic" {
					return true
				}
				target := ast.Unparen(call.Args[0])
				un, ok := target.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				v := targetVar(p, un.X)
				if v == nil {
					return true
				}
				inAtomic[ast.Unparen(un.X)] = true
				u := tainted[v]
				if u == nil {
					u = &atomicUse{pos: call.Pos(), fn: sel.Sel.Name}
					tainted[v] = u
				}
				if width == 64 {
					u.has64 = true
				}
				return true
			})
		}
	}
	if len(tainted) == 0 {
		return
	}

	// Pass 2: flag plain accesses of tainted fields anywhere else.
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.info.Defs[fd.Name].(*types.Func); ok && dirs.prepublish[obj] {
					continue // value not yet shared: plain access is fine
				}
				checkPlainAccesses(p, fd, tainted, inAtomic, r)
			}
		}
	}

	// Pass 3: 64-bit atomics on plain integer fields must be 8-aligned
	// under the 32-bit layout.
	sizes := types.SizesFor("gc", "386")
	for v, u := range tainted {
		if !u.has64 || !isPlain64(v.Type()) {
			continue
		}
		owner, idx := owningStruct(pkgs, v)
		if owner == nil {
			continue
		}
		fields := make([]*types.Var, owner.NumFields())
		for i := range fields {
			fields[i] = owner.Field(i)
		}
		offsets := sizes.Offsetsof(fields)
		if off := offsets[idx]; off%8 != 0 {
			r.report(v.Pos(), "atomicmix",
				"field %s is a plain %s used with %s but sits at offset %d on 32-bit layouts; move it to an 8-aligned offset or use the atomic.Int64 type",
				v.Name(), v.Type().String(), u.fn, off)
		}
	}
}

// targetVar resolves &expr's operand to a struct field or package-level var.
func targetVar(p *pkg, e ast.Expr) *types.Var {
	switch n := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := p.info.Selections[n]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := p.info.Uses[n].(*types.Var); ok && !v.IsField() && v.Parent() == p.tpkg.Scope() {
			return v
		}
	}
	return nil
}

func checkPlainAccesses(p *pkg, fd *ast.FuncDecl, tainted map[*types.Var]*atomicUse, inAtomic map[ast.Node]bool, r *reporter) {
	// Constructor-local exemption: values built from a composite literal in
	// this function are not shared yet.
	exempt := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && i < len(as.Rhs) && isConstructorRHS(as.Rhs[i]) {
				if obj := p.info.Defs[id]; obj != nil {
					exempt[obj] = true
				}
			}
		}
		return true
	})

	// Writes: LHS of assignments and inc/dec targets.
	writes := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				writes[ast.Unparen(l)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(s.X)] = true
		}
		return true
	})

	report := func(pos token.Pos, v *types.Var, node ast.Node) {
		u := tainted[v]
		verb := "plain read of"
		if writes[node] {
			verb = "plain write to"
		}
		r.report(pos, "atomicmix",
			"%s %s, which is accessed atomically (%s at %s); every access must go through sync/atomic",
			verb, v.Name(), u.fn, p.fset.Position(u.pos))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if inAtomic[e] {
				return false
			}
			s, ok := p.info.Selections[e]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok || tainted[v] == nil {
				return true
			}
			if base := baseIdentObj(p, e.X); base != nil && exempt[base] {
				return true
			}
			report(e.Pos(), v, e)
		case *ast.Ident:
			if inAtomic[e] {
				return true
			}
			v, ok := p.info.Uses[e].(*types.Var)
			if !ok || v.IsField() || tainted[v] == nil {
				return true
			}
			report(e.Pos(), v, e)
		}
		return true
	})
}

func isPlain64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64)
}

// owningStruct finds the struct type declaring field v and its index.
func owningStruct(pkgs []*pkg, v *types.Var) (*types.Struct, int) {
	for _, p := range pkgs {
		scope := p.tpkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return st, i
				}
			}
		}
	}
	return nil, 0
}
