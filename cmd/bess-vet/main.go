// Command bess-vet is BeSS's project-specific static analyzer. It enforces
// the invariants that go vet and the race detector cannot see:
//
//   - lockorder: nested lock acquisitions across the call graph must follow
//     the hierarchy declared by //bess:lockorder (internal/server/lockorder.go).
//   - durability: error results of Sync/Close/Write/Append/Flush on files,
//     the WAL, and storage areas must not be silently dropped or shadowed.
//   - guarded: struct fields annotated `// guarded by <mu>` may only be
//     touched with that mutex held (writes need the exclusive lock).
//   - defers: every Lock/RLock is paired with an Unlock on every exit path.
//
// Usage:
//
//	go run ./cmd/bess-vet ./...
//	go run ./cmd/bess-vet ./internal/... ./cmd/...
//
// Exits 1 when any finding is reported, 2 on loader errors. The tool is
// stdlib-only (go/parser, go/types with the source importer): it needs no
// build cache and no external binaries.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		dir  = flag.String("C", ".", "module directory to analyze")
		only = flag.String("only", "", "comma-separated analyzer subset (lockorder,durability,guarded,defers)")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	findings, err := run(*dir, patterns, *only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bess-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.pos.Filename, f.pos.Line, f.pos.Column, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		fmt.Printf("bess-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// run loads the module rooted at (or above) dir and applies the selected
// analyzers to the packages matching patterns.
func run(dir string, patterns []string, only string) ([]finding, error) {
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)
	pkgs, err := l.load(patterns)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}

	dirs := newDirectives()
	for _, p := range pkgs {
		if err := dirs.collect(p); err != nil {
			return nil, fmt.Errorf("%s: %w", p.path, err)
		}
	}

	var flows []*flowResult
	for _, p := range pkgs {
		flows = append(flows, flowsOf(p, dirs)...)
	}

	enabled := map[string]bool{}
	if only == "" {
		enabled = map[string]bool{"lockorder": true, "durability": true, "guarded": true, "defers": true}
	} else {
		for _, a := range strings.Split(only, ",") {
			enabled[strings.TrimSpace(a)] = true
		}
	}

	r := &reporter{fset: l.fset}
	if enabled["lockorder"] {
		analyzeLockOrder(flows, dirs, r)
	}
	if enabled["guarded"] {
		analyzeGuarded(flows, dirs, r)
	}
	if enabled["defers"] {
		analyzeDefers(flows, dirs, r)
	}
	if enabled["durability"] {
		analyzeDurability(pkgs, r)
	}
	return r.sorted(), nil
}
