// Command bess-vet is BeSS's project-specific static analyzer. It enforces
// the invariants that go vet and the race detector cannot see:
//
//   - lockorder: nested lock acquisitions across the call graph must follow
//     the hierarchy declared by //bess:lockorder (internal/server/lockorder.go).
//   - durability: error results of Sync/Close/Write/Append/Flush on files,
//     the WAL, and storage areas must not be silently dropped or shadowed.
//   - guarded: struct fields annotated `// guarded by <mu>` may only be
//     touched with that mutex held (writes need the exclusive lock).
//   - defers: every Lock/RLock is paired with an Unlock on every exit path.
//   - poollife: acquire/release pairs declared by //bess:resource (pooled
//     frame buffers, segment pins, mmap mappings) are released exactly once
//     on every path and never escape the pool's sight.
//   - atomicmix: a field accessed through sync/atomic anywhere must be
//     accessed atomically everywhere, and plain 64-bit fields used with the
//     64-bit atomics must be 8-aligned under the 32-bit layout.
//   - codecsym: Append*/Decode* pairs in //bess:codecsym packages write and
//     read the same field sequence (count, order, width).
//   - golife: every goroutine spawned in a //bess:golife package has a
//     provable stop path (done-channel close, stop flag, WaitGroup join,
//     or error-break on a closable source), or an explicit
//     //bess:golife ignore=<reason> waiver.
//   - chanflow: channel protocol discipline in //bess:golife packages —
//     no double-close or send-after-close on any path, no unbuffered sends
//     from goroutines without a select escape, no WaitGroup.Add inside the
//     spawned goroutine.
//   - walorder: in //bess:walorder packages, every page-store sink (a call
//     to a //bess:walsink function) must be dominated by a wal Append on
//     the same path, declared capture=/mutate= pairs must stage a
//     pre-update image before overwriting, and LSN chains must stay
//     monotone (no stale PrevLSN after a newer Append).
//   - lockfree: interprocedural taint from //bess:lockfree roots (snapshot
//     fetch, snapshot scans, version-chain readers): any reachable
//     Lock/RLock or lock-manager Acquire is a finding unless waived with
//     //bess:lockfree ignore=<reason>.
//   - hotalloc: per-op heap allocations in //bess:hotpath functions (make,
//     nil-base append clones, string<->[]byte conversions, closures,
//     interface boxing) must be pooled, hoisted, or waived with
//     //bess:hotpath ignore=<reason>.
//   - directive: a //bess: comment with an unknown verb or a malformed
//     argument is itself a finding — typos must not silently disable
//     checking.
//
// Usage:
//
//	go run ./cmd/bess-vet ./...
//	go run ./cmd/bess-vet -json ./internal/... ./cmd/...
//	go vet -vettool=$(which bess-vet) ./...
//
// Exits 1 when any finding is reported, 2 on loader errors. With -json the
// findings are printed as a JSON array (empty array when clean) instead of
// the line-oriented report. The third form is the go vet tool protocol:
// when invoked by the go command (with -V=full, or with a single *.cfg
// argument) bess-vet answers the unit-checker handshake, analyzes the
// package the config describes, and reports findings for its files only —
// see vettool.go. The tool is stdlib-only (go/parser, go/types with the
// source importer): it needs no build cache and no external binaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	// go vet tool protocol: `go vet -vettool=bess-vet` invokes the tool with
	// -V=full (version handshake) or a single <unit>.cfg argument.
	if runVettool(os.Args[1:]) {
		return
	}
	var (
		dir     = flag.String("C", ".", "module directory to analyze")
		only    = flag.String("only", "", "comma-separated analyzer subset (lockorder,durability,guarded,defers,poollife,atomicmix,codecsym,golife,chanflow,walorder,lockfree,hotalloc,directive)")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	findings, err := run(*dir, patterns, *only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bess-vet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		type rec struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		// Report paths relative to the analyzed directory so CI can feed
		// them straight into ::error file=… annotations.
		base, _ := filepath.Abs(*dir)
		recs := make([]rec, 0, len(findings))
		for _, f := range findings {
			name := f.pos.Filename
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			recs = append(recs, rec{
				File:     name,
				Line:     f.pos.Line,
				Col:      f.pos.Column,
				Analyzer: f.analyzer,
				Message:  f.msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintf(os.Stderr, "bess-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.pos.Filename, f.pos.Line, f.pos.Column, f.analyzer, f.msg)
		}
		if len(findings) > 0 {
			fmt.Printf("bess-vet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// run loads the module rooted at (or above) dir and applies the selected
// analyzers to the packages matching patterns.
func run(dir string, patterns []string, only string) ([]finding, error) {
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)
	pkgs, err := l.load(patterns)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}

	dirs := newDirectives()
	for _, p := range pkgs {
		dirs.collect(p)
	}

	var flows []*flowResult
	for _, p := range pkgs {
		flows = append(flows, flowsOf(p, dirs)...)
	}

	enabled := map[string]bool{}
	if only == "" {
		enabled = map[string]bool{
			"lockorder": true, "durability": true, "guarded": true, "defers": true,
			"poollife": true, "atomicmix": true, "codecsym": true,
			"golife": true, "chanflow": true,
			"walorder": true, "lockfree": true, "hotalloc": true, "crcpath": true,
			"directive": true,
		}
	} else {
		for _, a := range strings.Split(only, ",") {
			enabled[strings.TrimSpace(a)] = true
		}
	}

	r := &reporter{fset: l.fset}
	if enabled["directive"] {
		for _, b := range dirs.bad {
			r.report(b.pos, "directive", "%s", b.msg)
		}
	}
	if enabled["lockorder"] {
		analyzeLockOrder(flows, dirs, r)
	}
	if enabled["guarded"] {
		analyzeGuarded(flows, dirs, r)
	}
	if enabled["defers"] {
		analyzeDefers(flows, dirs, r)
	}
	if enabled["durability"] {
		analyzeDurability(pkgs, r)
	}
	if enabled["poollife"] {
		analyzePoolLife(pkgs, dirs, r)
	}
	if enabled["atomicmix"] {
		analyzeAtomicMix(pkgs, dirs, r)
	}
	if enabled["codecsym"] {
		analyzeCodecSym(pkgs, dirs, r)
	}
	if enabled["golife"] {
		analyzeGoLife(pkgs, dirs, r)
	}
	if enabled["chanflow"] {
		analyzeChanFlow(pkgs, dirs, r)
	}
	if enabled["walorder"] {
		analyzeWALOrder(pkgs, dirs, r)
	}
	if enabled["lockfree"] {
		analyzeLockFree(pkgs, dirs, r)
	}
	if enabled["hotalloc"] {
		analyzeHotAlloc(pkgs, dirs, r)
	}
	if enabled["crcpath"] {
		analyzeCrcPath(pkgs, dirs, r)
	}
	return r.sorted(), nil
}
