// bess-inspect dumps the on-disk structures of a BeSS server directory:
// the catalog (databases, areas, files, types, root names), each storage
// area's geometry and segments, and the write-ahead log record stream.
//
// Usage:
//
//	bess-inspect -dir /var/bess [-log] [-segments] [-verify]
//
// -verify runs the same checksum walker the server's background scrubber
// uses over every segment (offline scrub): corruption found on any section
// is repaired from WAL history where possible, unrepairable segments are
// reported as quarantined, and the log itself is checked for mid-stream
// rot. Exit status 1 when damage remains.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"bess/internal/area"
	"bess/internal/page"
	"bess/internal/segment"
	"bess/internal/server"
	"bess/internal/wal"
)

func main() {
	dir := flag.String("dir", "bess-data", "server storage directory")
	showLog := flag.Bool("log", false, "dump the WAL record stream")
	showSegs := flag.Bool("segments", false, "decode every object segment header")
	verify := flag.Bool("verify", false, "offline scrub: verify every checksum, repairing from WAL history")
	flag.Parse()

	if _, err := os.Stat(*dir); err != nil {
		log.Fatalf("no server directory at %s", *dir)
	}

	// The catalog: open through the server (runs recovery, so what we
	// print is the consistent post-restart state).
	srv, err := server.Open(*dir, 0)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	info := srv.Inspect()
	damaged := false
	if *verify {
		damaged = runVerify(srv)
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	if damaged {
		// Registered before the dump sections' defers, so it runs last:
		// the full report prints, then the process fails.
		defer os.Exit(1)
	}

	fmt.Printf("BeSS server directory %s\n", *dir)
	for _, db := range info.Databases {
		fmt.Printf("\ndatabase %q (id %d)\n", db.Name, db.ID)
		fmt.Printf("  areas:    %v\n", db.Areas)
		fmt.Printf("  types:    %d registered\n", db.Types)
		fmt.Printf("  segments: %d across %d files\n", db.Segments, db.Files)
		if len(db.Roots) > 0 {
			fmt.Printf("  roots:    %s\n", strings.Join(db.Roots, ", "))
		}
	}

	// Areas: open read-only and report geometry.
	matches, _ := filepath.Glob(filepath.Join(*dir, "area-*.bess"))
	for _, path := range matches {
		a, err := area.OpenFile(path)
		if err != nil {
			fmt.Printf("\n%s: %v\n", path, err)
			continue
		}
		fmt.Printf("\n%s: area %d, %d extents, %d pages, %d free pages\n",
			filepath.Base(path), a.ID(), a.Extents(), a.Pages(), a.FreePages())
		if *showSegs {
			dumpSegments(a)
		}
		if err := a.Close(); err != nil {
			fmt.Printf("%s: close: %v\n", path, err)
		}
	}

	if *showLog {
		fmt.Printf("\nwrite-ahead log:\n")
		l, err := wal.OpenFile(filepath.Join(*dir, "wal.log"))
		if err != nil {
			log.Fatalf("open log: %v", err)
		}
		defer func() {
			if err := l.Close(); err != nil {
				log.Fatalf("close log: %v", err)
			}
		}()
		n := 0
		err = l.Iterate(0, func(lsn page.LSN, rec *wal.Record) error {
			n++
			switch rec.Type {
			case wal.TUpdate, wal.TCLR:
				fmt.Printf("  %8d %-10s tx=%-6d page=%v off=%d len=%d\n",
					lsn, rec.Type, rec.Tx, rec.Page, rec.Off, len(rec.After))
			case wal.TCheckpoint:
				fmt.Printf("  %8d %-10s active=%d dirty=%d\n",
					lsn, rec.Type, len(rec.ActiveTxs), len(rec.DirtyPages))
			default:
				fmt.Printf("  %8d %-10s tx=%d\n", lsn, rec.Type, rec.Tx)
			}
			return nil
		})
		if err != nil {
			log.Fatalf("iterate: %v", err)
		}
		fmt.Printf("  %d records\n", n)
	}
}

// runVerify is the offline scrub: one pass of the server's own checksum
// walker (ScrubOnce) plus a WAL integrity sweep. Returns true when damage
// survives (quarantined segments or an unreadable log).
func runVerify(srv *server.Server) bool {
	fmt.Printf("\nverify: walking all segments through the checksum scrubber\n")
	st, err := srv.ScrubOnce()
	if err != nil {
		fmt.Printf("  scrub error: %v\n", err)
	}
	fmt.Printf("  segments checked:  %d\n", st.SegmentsChecked)
	fmt.Printf("  pages verified:    %d\n", st.PagesVerified)
	fmt.Printf("  corruptions found: %d\n", st.CorruptionsFound)
	fmt.Printf("  repaired from WAL: %d\n", st.Repaired)
	fmt.Printf("  quarantined:       %d\n", st.Quarantined)
	for seg, cause := range srv.Quarantined() {
		fmt.Printf("    quarantined segment %d/%d: %s\n", seg.Area, seg.Start, cause)
	}
	walStats, walErr := srv.Log().Verify()
	if walErr != nil {
		fmt.Printf("  wal: CORRUPT after %d records (%d bytes): %v\n",
			walStats.Records, walStats.Bytes, walErr)
	} else {
		fmt.Printf("  wal: %d records (%d bytes) verified\n", walStats.Records, walStats.Bytes)
	}
	return err != nil || st.Quarantined > 0 || walErr != nil
}

// dumpSegments walks an area's pages looking for slotted-segment headers.
func dumpSegments(a *area.Area) {
	buf := make([]byte, page.Size)
	for p := page.No(1); p < a.Pages(); p++ {
		if err := a.ReadPage(p, buf); err != nil {
			continue
		}
		seg, err := segment.DecodeSlotted(buf)
		if err != nil {
			continue
		}
		fmt.Printf("    segment @%d: file=%d slots=%d objects=%d data=%d:%d(%dp, %dB used, %dB garbage)\n",
			p, seg.Hdr.FileID, seg.Hdr.NSlots, seg.Hdr.NObjects,
			seg.Hdr.DataArea, seg.Hdr.DataStart, seg.Hdr.DataPages,
			seg.Hdr.DataUsed, seg.Hdr.DataGarbage)
	}
}
