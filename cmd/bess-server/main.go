// bess-server runs a standalone BeSS storage server: it owns the storage
// areas under -dir and serves BeSS clients and node servers over TCP
// (paper §3, Figure 2). Restart runs ARIES recovery before accepting
// connections.
//
// Usage:
//
//	bess-server -dir /var/bess -addr :4466 -host 1
//
// SIGINT/SIGTERM shuts down gracefully: stop accepting, disconnect peers
// (aborting their in-flight transactions via the same path a dropped
// connection takes), write a final checkpoint, and close the areas. A
// second signal forces immediate exit.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"bess/internal/rpc"
	"bess/internal/server"
)

func main() {
	dir := flag.String("dir", "bess-data", "storage directory (areas, WAL, catalog)")
	addr := flag.String("addr", "127.0.0.1:4466", "TCP listen address")
	host := flag.Uint("host", 1, "host number embedded in OIDs (unique per server)")
	ckptEvery := flag.Duration("checkpoint", time.Minute, "fuzzy checkpoint interval (0 disables)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown budget for peer teardown")
	flag.Parse()

	srv, err := server.Open(*dir, uint16(*host))
	if err != nil {
		log.Fatalf("open server: %v", err)
	}

	l, err := rpc.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("bess-server host=%d dir=%s listening on %s", *host, *dir, l.Addr())

	if *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for range t.C {
				if err := srv.Checkpoint(); err != nil {
					log.Printf("checkpoint: %v", err)
				}
			}
		}()
	}

	// Track live peers so shutdown can disconnect them and wait for their
	// read loops (and thus their Disconnect-abort hooks) to finish.
	var (
		peerMu sync.Mutex
		peers  = make(map[*rpc.Peer]struct{})
		live   sync.WaitGroup
	)
	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			server.ServePeer(srv, p)
			peerMu.Lock()
			peers[p] = struct{}{}
			peerMu.Unlock()
			live.Add(1)
			p.SetOnClose(func(error) {
				peerMu.Lock()
				delete(peers, p)
				peerMu.Unlock()
				live.Done()
			})
		}
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	go func() {
		<-sig
		log.Fatalf("second signal: forcing exit")
	}()

	// Stop accepting, then disconnect every peer. Closing a peer runs its
	// OnClose hook, which aborts the client's in-flight transactions —
	// exactly what a dropped connection does, so no transaction is left
	// holding locks.
	if err := l.Close(); err != nil {
		log.Printf("close listener: %v", err)
	}
	peerMu.Lock()
	open := make([]*rpc.Peer, 0, len(peers))
	for p := range peers {
		open = append(open, p)
	}
	peerMu.Unlock()
	for _, p := range open {
		p.Close()
	}
	drained := make(chan struct{})
	go func() { live.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(*drain):
		log.Printf("drain budget (%v) exhausted with peers still live", *drain)
	}

	// A final checkpoint keeps the next restart's analysis pass short. Its
	// failure is logged, not fatal: recovery works from any log suffix.
	if err := srv.Checkpoint(); err != nil {
		log.Printf("final checkpoint: %v", err)
	}

	st := srv.Snapshot()
	log.Printf("served %d messages, %d commits, %d callbacks", st.Messages, st.Commits, st.Callbacks)
	// The final close flushes the WAL; a failure here means the last
	// commits may not be durable and must not exit 0.
	if err := srv.Close(); err != nil {
		log.Fatalf("close server: %v", err)
	}
}
