// bess-server runs a standalone BeSS storage server: it owns the storage
// areas under -dir and serves BeSS clients and node servers over TCP
// (paper §3, Figure 2). Restart runs ARIES recovery before accepting
// connections.
//
// Usage:
//
//	bess-server -dir /var/bess -addr :4466 -host 1
//
// SIGINT/SIGTERM shuts down gracefully: stop accepting, disconnect peers
// (aborting their in-flight transactions via the same path a dropped
// connection takes), write a final checkpoint, and close the areas. A
// second signal forces immediate exit.
//
// Goroutines here carry stop evidence for bess-vet's golife analyzer
// (DESIGN.md §4e); the two process-lifetime daemons are waived explicitly.
//
//bess:golife
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"bess/internal/rpc"
	"bess/internal/server"
)

func main() {
	dir := flag.String("dir", "bess-data", "storage directory (areas, WAL, catalog)")
	addr := flag.String("addr", "127.0.0.1:4466", "TCP listen address")
	host := flag.Uint("host", 1, "host number embedded in OIDs (unique per server)")
	ckptEvery := flag.Duration("checkpoint", time.Minute, "fuzzy checkpoint interval (0 disables)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown budget for peer teardown")
	flag.Parse()

	srv, err := server.Open(*dir, uint16(*host))
	if err != nil {
		log.Fatalf("open server: %v", err)
	}

	l, err := rpc.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("bess-server host=%d dir=%s listening on %s", *host, *dir, l.Addr())

	if *ckptEvery > 0 {
		//bess:golife ignore=checkpoint ticker runs for the process lifetime
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for range t.C {
				if err := srv.Checkpoint(); err != nil {
					log.Printf("checkpoint: %v", err)
				}
			}
		}()
	}

	// Track live peers so shutdown can disconnect them and wait for their
	// read loops (and thus their Disconnect-abort hooks) to finish. Each
	// peer gets its own done channel, closed by its OnClose hook; shutdown
	// drains the channels of the peers it saw under a deadline. (A shared
	// WaitGroup would race: Add from this goroutine against main's Wait.)
	var (
		peerMu sync.Mutex
		peers  = make(map[*rpc.Peer]chan struct{})
	)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			server.ServePeer(srv, p)
			gone := make(chan struct{})
			peerMu.Lock()
			peers[p] = gone
			peerMu.Unlock()
			p.SetOnClose(func(error) {
				peerMu.Lock()
				delete(peers, p)
				peerMu.Unlock()
				close(gone)
			})
		}
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	//bess:golife ignore=second-signal watcher runs until the forced exit
	go func() {
		<-sig
		log.Fatalf("second signal: forcing exit")
	}()

	// Stop accepting, then disconnect every peer. Closing a peer runs its
	// OnClose hook, which aborts the client's in-flight transactions —
	// exactly what a dropped connection does, so no transaction is left
	// holding locks.
	if err := l.Close(); err != nil {
		log.Printf("close listener: %v", err)
	}
	<-acceptDone // no new peers can register past this point
	peerMu.Lock()
	open := make(map[*rpc.Peer]chan struct{}, len(peers))
	for p, gone := range peers {
		open[p] = gone
	}
	peerMu.Unlock()
	for p := range open {
		p.Close()
	}
	deadline := time.Now().Add(*drain)
	stranded := 0
	for _, gone := range open {
		t := time.NewTimer(time.Until(deadline))
		select {
		case <-gone:
			t.Stop()
		case <-t.C:
			stranded++
		}
	}
	if stranded > 0 {
		log.Printf("drain budget (%v) exhausted with %d peer(s) still live", *drain, stranded)
	}

	// A final checkpoint keeps the next restart's analysis pass short. Its
	// failure is logged, not fatal: recovery works from any log suffix.
	if err := srv.Checkpoint(); err != nil {
		log.Printf("final checkpoint: %v", err)
	}

	st := srv.Snapshot()
	log.Printf("served %d messages, %d commits, %d callbacks", st.Messages, st.Commits, st.Callbacks)
	// The final close flushes the WAL; a failure here means the last
	// commits may not be durable and must not exit 0.
	if err := srv.Close(); err != nil {
		log.Fatalf("close server: %v", err)
	}
}
