// bess-server runs a standalone BeSS storage server: it owns the storage
// areas under -dir and serves BeSS clients and node servers over TCP
// (paper §3, Figure 2). Restart runs ARIES recovery before accepting
// connections.
//
// Usage:
//
//	bess-server -dir /var/bess -addr :4466 -host 1
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bess/internal/rpc"
	"bess/internal/server"
)

func main() {
	dir := flag.String("dir", "bess-data", "storage directory (areas, WAL, catalog)")
	addr := flag.String("addr", "127.0.0.1:4466", "TCP listen address")
	host := flag.Uint("host", 1, "host number embedded in OIDs (unique per server)")
	ckptEvery := flag.Duration("checkpoint", time.Minute, "fuzzy checkpoint interval (0 disables)")
	flag.Parse()

	srv, err := server.Open(*dir, uint16(*host))
	if err != nil {
		log.Fatalf("open server: %v", err)
	}

	l, err := rpc.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("bess-server host=%d dir=%s listening on %s", *host, *dir, l.Addr())

	if *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for range t.C {
				if err := srv.Checkpoint(); err != nil {
					log.Printf("checkpoint: %v", err)
				}
			}
		}()
	}

	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			server.ServePeer(srv, p)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := l.Close(); err != nil {
		log.Printf("close listener: %v", err)
	}
	st := srv.Snapshot()
	log.Printf("served %d messages, %d commits, %d callbacks", st.Messages, st.Commits, st.Callbacks)
	// The final close flushes the WAL; a failure here means the last
	// commits may not be durable and must not exit 0.
	if err := srv.Close(); err != nil {
		log.Fatalf("close server: %v", err)
	}
}
