// Quickstart: open a database on an embedded BeSS server (the "open
// server" configuration), define a type, build a small object graph with
// direct references, name a root, commit, and navigate it back.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"bess/internal/core"
	"bess/internal/server"
)

// Person is the paper's running example: a name and a spouse reference.
type Person struct {
	Name   string
	Spouse core.Ref
}

const personSize = 32 // spouse ref (8) + name (24)

func encode(p *Person) []byte {
	b := make([]byte, personSize)
	binary.BigEndian.PutUint64(b[0:8], uint64(p.Spouse.Addr()))
	copy(b[8:], p.Name)
	return b
}

func decode(b []byte) *Person {
	return &Person{Name: string(bytes.TrimRight(b[8:32], "\x00"))}
}

func main() {
	// A file-backed server would be server.Open(dir, host); memory keeps
	// the example self-contained.
	srv := server.NewMem(1)
	defer srv.Close()

	db, err := core.OpenDatabase(srv, "quickstart", "people", true)
	if err != nil {
		log.Fatal(err)
	}
	personType, err := core.Register(db, core.TypeDesc{
		Name: "Person", Size: personSize, RefOffsets: []int{0},
	}, encode, decode)
	if err != nil {
		log.Fatal(err)
	}
	people, err := db.CreateFile("people")
	if err != nil {
		log.Fatal(err)
	}

	// Build: alice <-> bob, rooted at "alice".
	if err := db.Begin(); err != nil {
		log.Fatal(err)
	}
	alice, err := personType.New(people, &Person{Name: "Alice"})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := personType.New(people, &Person{Name: "Bob"})
	if err != nil {
		log.Fatal(err)
	}
	aObj, _ := db.Deref(alice)
	if err := aObj.SetRef(0, bob); err != nil {
		log.Fatal(err)
	}
	bObj, _ := db.Deref(bob)
	if err := bObj.SetRef(0, alice); err != nil {
		log.Fatal(err)
	}
	if err := db.SetRoot("alice", alice); err != nil {
		log.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed: alice <-> bob")

	// Navigate: p->spouse->name, exactly the §2.5 access pattern.
	if err := db.Begin(); err != nil {
		log.Fatal(err)
	}
	root, err := db.Root("alice")
	if err != nil {
		log.Fatal(err)
	}
	spouseRef, err := root.Ref(0)
	if err != nil {
		log.Fatal(err)
	}
	spouse, err := personType.Get(db, spouseRef)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's spouse: %s\n", spouse.Name)

	// Scan the file with the cursor mechanism.
	names := []string{}
	if err := people.Scan(func(o *core.Object) error {
		b, err := o.Bytes()
		if err != nil {
			return err
		}
		names = append(names, decode(b).Name)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file scan: %v\n", names)
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}

	// The wave statistics show the lazy mapping at work.
	st := db.Session().Mapper().Stats()
	fmt.Printf("waves: %d reservations, %d slotted loads, %d data loads, %d refs swizzled\n",
		st.Wave1Reservations, st.Wave2SlottedLoads, st.Wave3DataLoads, st.RefsSwizzled)
}
