// Multimedia: the Prospector/Calico use case — large media objects with
// user-registered compression hooks, and very large objects edited with
// byte-range operations (insert/delete/append) instead of rewrites.
package main

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"log"

	"bess/internal/core"
	"bess/internal/hooks"
	"bess/internal/server"
)

func main() {
	srv := server.NewMem(1)
	defer srv.Close()

	// §2.4: "compressing [very large objects] when they are stored on disk,
	// and uncompressing them when they are fetched" — the functions are
	// written by the user and registered with the BeSS system.
	srv.Hooks().Register(hooks.EvObjectFlush, func(i *hooks.Info) error {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := w.Write(*i.Data); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("  hook: compressed %d -> %d bytes\n", len(*i.Data), buf.Len())
		*i.Data = buf.Bytes()
		return nil
	})
	srv.Hooks().Register(hooks.EvObjectFetch, func(i *hooks.Info) error {
		r := flate.NewReader(bytes.NewReader(*i.Data))
		out, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		*i.Data = out
		return nil
	})

	db, err := core.OpenDatabase(srv, "prospector", "media", true)
	if err != nil {
		log.Fatal(err)
	}
	tracks, err := db.CreateFile("tracks")
	if err != nil {
		log.Fatal(err)
	}

	// A compressible 48KB "image" stored as a transparent large object.
	frame := bytes.Repeat([]byte("FRAMEDATA"), 48<<10/9)
	db.Begin()
	ref, err := tracks.NewLarge(0, frame)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}

	db.Begin()
	obj, err := db.Deref(ref)
	if err != nil {
		log.Fatal(err)
	}
	got, err := obj.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched frame: %d bytes, intact=%v\n", len(got), bytes.Equal(got, frame))
	db.Commit()

	// A continuous-media track as a very large object: append "samples",
	// then splice a clip into the middle — only the touched segments move.
	track, err := db.NewVLO(32 << 20)
	if err != nil {
		log.Fatal(err)
	}
	sample := make([]byte, 4096)
	for i := range sample {
		sample[i] = byte(i)
	}
	for s := 0; s < 512; s++ { // 2MB of samples
		if err := track.Append(sample); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("track: %d bytes in %d segments, tree depth %d\n",
		track.Size(), track.Segments(), track.Depth())

	r0, w0, _, _ := track.Stats()
	clip := bytes.Repeat([]byte("CLIP"), 1024)
	if err := track.Insert(track.Size()/2, clip); err != nil {
		log.Fatal(err)
	}
	r1, w1, _, _ := track.Stats()
	fmt.Printf("mid-track splice of %d bytes: %d segment reads, %d segment writes\n",
		len(clip), r1-r0, w1-w0)

	// Cut a scene back out.
	if err := track.Delete(track.Size()/4, 64<<10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after cut: %d bytes\n", track.Size())

	db.Begin()
	if err := db.SaveVLO("track-1", track); err != nil {
		log.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}

	db.Begin()
	reopened, err := db.OpenVLO("track-1")
	if err != nil {
		log.Fatal(err)
	}
	db.Commit()
	probe := make([]byte, 4)
	if err := reopened.Read(reopened.Size()/2, probe); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened track: %d bytes, probe at midpoint: %q\n", reopened.Size(), probe)
}
