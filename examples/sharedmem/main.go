// Sharedmem: the Figure 3/4 walkthrough — a node server establishes a
// shared cache; several application "processes" attach in shared-memory
// mode and operate on cached pages in place, with shared-space pointers
// (SVMA offsets) valid in every process, two-level clock replacement, and
// crash cleanup.
package main

import (
	"fmt"
	"log"

	"bess/internal/client"
	"bess/internal/nodeserver"
	"bess/internal/page"
	"bess/internal/rpc"
	"bess/internal/server"
	"bess/internal/shm"
)

func main() {
	// A BeSS server owning the storage, and a node server connected to it
	// over RPC (node 2 of Figure 2 would link them directly).
	srv := server.NewMem(1)
	defer srv.Close()
	cEnd, sEnd := rpc.Pipe()
	server.ServePeer(srv, sEnd)
	node, err := nodeserver.New(client.NewRemote(cEnd), "node-1", 4, 32)
	if err != nil {
		log.Fatal(err)
	}

	// Seed three disk pages A, B, C through the node.
	seed, err := client.Open(node, "seeder", "db", true)
	if err != nil {
		log.Fatal(err)
	}
	pages := map[byte]page.ID{}
	for _, tag := range []byte{'A', 'B', 'C'} {
		area, start, _, err := node.AllocRun(seed.DB(), 1)
		if err != nil {
			log.Fatal(err)
		}
		data := make([]byte, page.Size)
		for i := range data {
			data[i] = tag
		}
		if err := node.WriteRun(seed.DB(), area, start, data); err != nil {
			log.Fatal(err)
		}
		pages[tag] = page.ID{Area: page.AreaID(area), Page: page.No(start)}
	}

	// Two application processes attach to the shared cache.
	p1, err := node.AttachShared()
	if err != nil {
		log.Fatal(err)
	}
	p2, err := node.AttachShared()
	if err != nil {
		log.Fatal(err)
	}

	// Figure 4(a): P1 maps A, P2 maps B — same SVMA frames for everyone.
	refA, err := p1.Access(pages['A'])
	if err != nil {
		log.Fatal(err)
	}
	refB, err := p2.Access(pages['B'])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P1 sees page A at SVMA frame %d; P2 sees page B at frame %d\n",
		refA.FrameOf(), refB.FrameOf())

	// In-place shared write: P1 updates A under a latch; P2 reads it
	// through its own mapping of the same cache slot — no copying, no IPC.
	if err := p1.WithLatch(refA, func() error {
		return p1.Write(refA, []byte("updated-in-place"))
	}); err != nil {
		log.Fatal(err)
	}
	refA2, _ := p2.Access(pages['A'])
	buf := make([]byte, 16)
	if err := p2.Read(refA2, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P2 reads P1's in-place update: %q (same frame: %v)\n", buf, refA2 == refA)

	// Figure 4(b): P2 touches C; the cache must replace a page, driven by
	// the two-level clock. P1 then sees C at the frame the SMT assigned.
	refC, err := p2.Access(pages['C'])
	if err != nil {
		log.Fatal(err)
	}
	refC1, err := p1.Access(pages['C'])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page C at SVMA frame %d for both processes: %v\n", refC.FrameOf(), refC == refC1)

	// A shared-space pointer stored inside a page is valid for everyone.
	ptr := refC + 100
	var enc [8]byte
	for i := 0; i < 8; i++ {
		enc[i] = byte(uint64(ptr) >> (56 - 8*i))
	}
	p1.Write(refA2, enc[:])
	var dec [8]byte
	p2.Read(refA2, dec[:])
	var raw uint64
	for _, b := range dec {
		raw = raw<<8 | uint64(b)
	}
	fmt.Printf("P2 follows the shared pointer stored by P1: frame %d offset %d\n",
		shm.Ref(raw).FrameOf(), shm.Ref(raw).OffsetOf())

	// Crash cleanup: P1 dies holding nothing is fine — but even holding a
	// latch, the system recovers its resources (as in Rdb/VMS).
	p1.Crash()
	if err := p2.WithLatch(refC, func() error { return nil }); err != nil {
		log.Fatal(err)
	}
	fmt.Println("P1 crashed; its slots and latches were reclaimed; P2 continues")

	// Write-back of dirty pages to the server's disk.
	if err := node.SharedCache().FlushDirty(); err != nil {
		log.Fatal(err)
	}
	st := node.SharedCache().Pool().Snapshot()
	fmt.Printf("cache: %d hits, %d misses, %d evictions, %d clock steps\n",
		st.Hits, st.Misses, st.Evictions, st.SweepSteps)
	p2.Detach()
}
