// Distributed: the Figure 2 topology over real TCP — two BeSS servers, a
// client workstation talking to both, and a two-phase commit spanning
// databases on different servers.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"bess/internal/client"
	"bess/internal/core"
	"bess/internal/rpc"
	"bess/internal/server"
)

func startServer(host uint16) (*server.Server, string) {
	srv := server.NewMem(host)
	l, err := rpc.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			server.ServePeer(srv, p)
		}
	}()
	return srv, l.Addr()
}

func main() {
	srv1, addr1 := startServer(1)
	srv2, addr2 := startServer(2)
	defer srv1.Close()
	defer srv2.Close()
	fmt.Printf("server 1 at %s, server 2 at %s\n", addr1, addr2)

	// The application on node 1 of Figure 2: connections to both servers.
	peer1, err := rpc.Dial(addr1)
	if err != nil {
		log.Fatal(err)
	}
	peer2, err := rpc.Dial(addr2)
	if err != nil {
		log.Fatal(err)
	}
	db1, err := core.OpenDatabase(client.NewRemote(peer1), "app", "accounts-east", true)
	if err != nil {
		log.Fatal(err)
	}
	db2, err := core.OpenDatabase(client.NewRemote(peer2), "app", "accounts-west", true)
	if err != nil {
		log.Fatal(err)
	}

	acct := core.TypeDesc{Name: "Account", Size: 8}
	enc := func(v *uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, *v)
		return b
	}
	dec := func(b []byte) *uint64 {
		v := binary.BigEndian.Uint64(b)
		return &v
	}
	t1, err := core.Register(db1, acct, enc, dec)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := core.Register(db2, acct, enc, dec)
	if err != nil {
		log.Fatal(err)
	}
	f1, _ := db1.CreateFile("accounts")
	f2, _ := db2.CreateFile("accounts")

	// Seed: 100 east, 0 west.
	east, west := uint64(100), uint64(0)
	db1.Begin()
	r1, err := t1.New(f1, &east)
	if err != nil {
		log.Fatal(err)
	}
	db1.SetRoot("acct", r1)
	if err := db1.Commit(); err != nil {
		log.Fatal(err)
	}
	db2.Begin()
	r2, err := t2.New(f2, &west)
	if err != nil {
		log.Fatal(err)
	}
	db2.SetRoot("acct", r2)
	if err := db2.Commit(); err != nil {
		log.Fatal(err)
	}

	// Distributed transfer: move 40 east→west atomically with 2PC. The
	// client is the coordinator (the first server a pure client connects
	// to would normally coordinate; the protocol is identical).
	db1.Begin()
	db2.Begin()
	o1, _ := db1.Root("acct")
	o2, _ := db2.Root("acct")
	v1, _ := o1.Bytes()
	v2, _ := o2.Bytes()
	e, w := binary.BigEndian.Uint64(v1), binary.BigEndian.Uint64(v2)
	e -= 40
	w += 40
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, e)
	if err := o1.Write(0, buf); err != nil {
		log.Fatal(err)
	}
	binary.BigEndian.PutUint64(buf, w)
	if err := o2.Write(0, buf); err != nil {
		log.Fatal(err)
	}

	// Phase 1: both branches prepare (forced prepare records).
	if err := db1.Session().PrepareCommit(); err != nil {
		log.Fatal("east vote:", err)
	}
	if err := db2.Session().PrepareCommit(); err != nil {
		log.Fatal("west vote:", err)
	}
	fmt.Println("2PC phase 1: both branches voted YES")
	// Phase 2: deliver the commit decision.
	if err := db1.Session().FinishCommit(true); err != nil {
		log.Fatal(err)
	}
	if err := db2.Session().FinishCommit(true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2PC phase 2: committed on both servers")

	// Verify through fresh transactions.
	db1.Begin()
	db2.Begin()
	o1, _ = db1.Root("acct")
	o2, _ = db2.Root("acct")
	b1, _ := o1.Bytes()
	b2, _ := o2.Bytes()
	fmt.Printf("balances: east=%d west=%d (sum preserved: %v)\n",
		binary.BigEndian.Uint64(b1), binary.BigEndian.Uint64(b2),
		binary.BigEndian.Uint64(b1)+binary.BigEndian.Uint64(b2) == 100)
	db1.Commit()
	db2.Commit()
}
