// Reorg: the federated-environment scenario of §2.1 — a database is
// reorganized on the fly (objects deleted, data segments compacted,
// resized, and relocated) while existing object references stay valid,
// because references name the immovable slots, not the data locations.
package main

import (
	"fmt"
	"log"

	"bess/internal/core"
	"bess/internal/server"
)

func main() {
	srv := server.NewMem(1)
	defer srv.Close()
	db, err := core.OpenDatabase(srv, "federation", "warehouse", true)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := db.RegisterType(core.TypeDesc{Name: "Record", Size: 0})
	if err != nil {
		log.Fatal(err)
	}
	f, err := db.CreateFile("records", core.WithGeometry(1, 4))
	if err != nil {
		log.Fatal(err)
	}

	// Fill a segment, remembering every reference — these model references
	// held by *other* systems in the federation, which we cannot rewrite.
	db.Begin()
	var refs []core.Ref
	for i := 0; i < 60; i++ {
		body := make([]byte, 200)
		for j := range body {
			body[j] = byte(i)
		}
		r, err := f.New(blob, body)
		if err != nil {
			log.Fatal(err)
		}
		refs = append(refs, r)
	}
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %d records; external references handed out\n", len(refs))

	// Reorganize: delete every other record (creating garbage), then let
	// creation pressure compact and grow/relocate the data segment.
	db.Begin()
	for i := 0; i < len(refs); i += 2 {
		obj, err := db.Deref(refs[i])
		if err != nil {
			log.Fatal(err)
		}
		if err := obj.Delete(); err != nil {
			log.Fatal(err)
		}
	}
	// New, bigger records force compaction and data-segment growth; the
	// server re-homes the grown data segment at commit (relocation).
	for i := 0; i < 30; i++ {
		if _, err := f.New(blob, make([]byte, 900)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("reorganized: deletions, compaction, growth, relocation at commit")

	// Every surviving external reference still dereferences correctly —
	// through a *fresh* session, proving the on-disk form moved without
	// breaking references.
	db2, err := core.OpenDatabase(srv, "partner-system", "warehouse", false)
	if err != nil {
		log.Fatal(err)
	}
	db2.Begin()
	ok := 0
	for i := 1; i < len(refs); i += 2 {
		g := db.GlobalRefOf(refs[i]) // the position-independent form
		obj, err := db2.DerefGlobal(g)
		if err != nil {
			log.Fatalf("reference %d broken by reorganization: %v", i, err)
		}
		b, err := obj.Bytes()
		if err != nil {
			log.Fatal(err)
		}
		if len(b) != 200 || b[0] != byte(i) {
			log.Fatalf("reference %d reads wrong bytes", i)
		}
		ok++
	}
	db2.Commit()
	fmt.Printf("all %d surviving references valid after reorganization\n", ok)

	st := srv.Snapshot()
	fmt.Printf("server: %d commits, %d pages written\n", st.Commits, st.PagesWritten)
}
