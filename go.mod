module bess

go 1.22
